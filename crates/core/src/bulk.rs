//! Bulk (batched) processing of the edge stream — §3.3 of the paper,
//! Theorem 3.5.
//!
//! Processing each edge through all `r` estimators costs `O(m·r)` total
//! time. The bulk algorithm instead ingests a *batch* of `w` edges and
//! advances all estimators to the state they would reach after observing the
//! batch one edge at a time, in only `O(r + w)` time and `O(r + w)` working
//! space:
//!
//! 1. **Level-1 resampling** — one reservoir draw per estimator over
//!    "old stream vs. this batch".
//! 2. **Level-2 candidate tracking** — the candidate set `N(r₁) ∩ B` is
//!    characterised implicitly by vertex degrees within the batch
//!    (Observation 3.6). A first pass of the degree-keeping edge iterator
//!    (`edgeIter`, Algorithm 2) records, for each estimator, the batch
//!    degrees of `r₁`'s endpoints at the moment `r₁` arrived (β values) and
//!    at the end of the batch; a single `randInt` per estimator then decides
//!    whether to keep the current `r₂` or subscribe to the EVENT_B that will
//!    produce the new one (Algorithm 3), and a second pass resolves those
//!    subscriptions to concrete edges.
//! 3. **Wedge closing** — a hash table keyed by the (unique) edge that would
//!    close each estimator's wedge is consulted while scanning the batch.
//!
//! The result is *distributionally identical* to one-at-a-time processing:
//! every estimator ends the batch with `r₁` uniform over the whole stream,
//! `r₂` uniform over `N(r₁)`, `c = |N(r₁)|`, and the closing edge found iff
//! one arrived after `r₂` — the property the accuracy theorems rely on and
//! the property the test suite checks explicitly.

use crate::counter::Aggregation;
use crate::estimator::{EstimatorState, PositionedEdge};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use tristream_graph::{Edge, VertexId};
use tristream_sample::{mean, median_of_means, GeometricSkip};

/// How Step 1 (level-1 resampling) walks over the estimator pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Level1Strategy {
    /// One reservoir draw per estimator per batch — the straightforward
    /// `O(r)` implementation of the conceptual algorithm.
    #[default]
    PerEstimator,
    /// The §4 optimisation: as the stream grows, the per-estimator
    /// replacement probability `w/(m+w)` shrinks, so instead of touching all
    /// `r` estimators the implementation draws geometric gaps between the
    /// estimators that actually replace their level-1 edge and skips the
    /// rest. Expected work per batch is `O(r·w/(m+w) + w)`.
    GeometricSkip,
}

/// Streaming triangle counter that ingests edges in batches in
/// `O(r + w)` time per batch (Theorem 3.5).
#[derive(Debug, Clone)]
pub struct BulkTriangleCounter {
    estimators: Vec<EstimatorState>,
    edges_seen: u64,
    rng: SmallRng,
    aggregation: Aggregation,
    level1_strategy: Level1Strategy,
}

impl BulkTriangleCounter {
    /// Creates a bulk counter with `r` estimators and plain-mean aggregation.
    ///
    /// # Panics
    ///
    /// Panics if `r` is zero.
    pub fn new(r: usize, seed: u64) -> Self {
        Self::with_aggregation(r, seed, Aggregation::Mean)
    }

    /// Creates a bulk counter with an explicit aggregation strategy.
    ///
    /// # Panics
    ///
    /// Panics if `r` is zero, or if a median-of-means aggregation requests
    /// zero groups.
    pub fn with_aggregation(r: usize, seed: u64, aggregation: Aggregation) -> Self {
        assert!(r > 0, "at least one estimator is required");
        if let Aggregation::MedianOfMeans { groups } = aggregation {
            assert!(groups > 0, "median-of-means needs at least one group");
        }
        Self {
            estimators: vec![EstimatorState::new(); r],
            edges_seen: 0,
            rng: SmallRng::seed_from_u64(seed),
            aggregation,
            level1_strategy: Level1Strategy::default(),
        }
    }

    /// Selects how level-1 resampling iterates over the pool (see
    /// [`Level1Strategy`]); returns `self` for builder-style chaining.
    pub fn with_level1_strategy(mut self, strategy: Level1Strategy) -> Self {
        self.level1_strategy = strategy;
        self
    }

    /// The level-1 resampling strategy in use.
    pub fn level1_strategy(&self) -> Level1Strategy {
        self.level1_strategy
    }

    /// Approximate resident memory of the estimator pool in bytes — the
    /// quantity the paper reports as "36 bytes per estimator" for its C++
    /// implementation (our states are larger because they keep full edges
    /// and positions for the sampler and the test invariants).
    pub fn estimator_memory_bytes(&self) -> usize {
        self.estimators.len() * std::mem::size_of::<EstimatorState>()
    }

    /// Number of estimators `r`.
    pub fn num_estimators(&self) -> usize {
        self.estimators.len()
    }

    /// Number of edges observed so far (`m`).
    pub fn edges_seen(&self) -> u64 {
        self.edges_seen
    }

    /// Read-only view of the estimator states.
    pub fn estimators(&self) -> &[EstimatorState] {
        &self.estimators
    }

    /// Processes a whole stream by cutting it into batches of `batch_size`
    /// edges. A batch size of `Θ(r)` (the paper suggests `w = 8r` in the
    /// experiments) gives `O(m + r)` total time.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    pub fn process_stream(&mut self, edges: &[Edge], batch_size: usize) {
        assert!(batch_size > 0, "batch size must be positive");
        for chunk in edges.chunks(batch_size) {
            self.process_batch(chunk);
        }
    }

    /// Ingests one batch of edges, advancing every estimator as if the edges
    /// had been processed one at a time in order.
    pub fn process_batch(&mut self, batch: &[Edge]) {
        let w = batch.len();
        if w == 0 {
            return;
        }
        let m = self.edges_seen;
        let r = self.estimators.len();

        // ---- Step 1: level-1 reservoir over (old stream) ++ (batch). ------
        // `replaced_at[i]` holds the batch index the i-th estimator's new
        // level-1 edge came from, if it was replaced this batch.
        let mut replaced_at: Vec<Option<usize>> = vec![None; r];
        match self.level1_strategy {
            Level1Strategy::PerEstimator => {
                for (idx, est) in self.estimators.iter_mut().enumerate() {
                    let total = m + w as u64;
                    let draw = self.rng.gen_range(0..total);
                    if draw >= m {
                        let k = (draw - m) as usize;
                        est.r1 = Some(PositionedEdge::new(batch[k], m + k as u64 + 1));
                        est.r2 = None;
                        est.c = 0;
                        est.closer = None;
                        replaced_at[idx] = Some(k);
                    }
                }
            }
            Level1Strategy::GeometricSkip => {
                // Each estimator replaces independently with probability
                // w/(m+w); enumerate only the successes via geometric gaps
                // (the §4 optimisation). Which batch edge is taken is a
                // second, uniform draw, exactly as in the per-estimator path.
                let p = w as f64 / (m + w as u64) as f64;
                let mut skip = GeometricSkip::new(p);
                for idx in skip.successes_up_to(&mut self.rng, r as u64) {
                    let idx = (idx - 1) as usize;
                    let k = self.rng.gen_range(0..w);
                    let est = &mut self.estimators[idx];
                    est.r1 = Some(PositionedEdge::new(batch[k], m + k as u64 + 1));
                    est.r2 = None;
                    est.c = 0;
                    est.closer = None;
                    replaced_at[idx] = Some(k);
                }
            }
        }

        // ---- Step 2a: first edgeIter pass — record β values and degB. -----
        // L maps a batch index to the estimators whose level-1 edge is that
        // batch edge (the "inverted index" of the paper).
        let mut level1_at_index: Vec<Vec<u32>> = vec![Vec::new(); w];
        for (idx, &at) in replaced_at.iter().enumerate() {
            if let Some(k) = at {
                level1_at_index[k].push(idx as u32);
            }
        }
        // β values per estimator, in the (u, v) order of the level-1 edge.
        let mut beta: Vec<(u64, u64)> = vec![(0, 0); r];
        let mut deg: HashMap<VertexId, u64> = HashMap::with_capacity(2 * w);
        for (i, e) in batch.iter().enumerate() {
            *deg.entry(e.u()).or_insert(0) += 1;
            *deg.entry(e.v()).or_insert(0) += 1;
            for &est_idx in &level1_at_index[i] {
                let r1_edge = self.estimators[est_idx as usize]
                    .r1
                    .expect("estimator replaced this batch has a level-1 edge")
                    .edge;
                debug_assert_eq!(r1_edge, *e);
                beta[est_idx as usize] = (deg[&r1_edge.u()], deg[&r1_edge.v()]);
            }
        }
        let final_deg = deg;

        // ---- Step 2b: one randInt per estimator; subscribe to EVENT_B. ----
        // P maps (vertex, degree-after-update) to the estimators whose new
        // level-2 edge is the batch edge generating that event.
        let mut subscriptions: HashMap<(VertexId, u64), Vec<u32>> = HashMap::new();
        for (idx, est) in self.estimators.iter_mut().enumerate() {
            let r1 = match est.r1 {
                Some(r1) => r1,
                None => continue,
            };
            let (x, y) = r1.edge.endpoints();
            let (beta_x, beta_y) = beta[idx];
            let deg_x = final_deg.get(&x).copied().unwrap_or(0);
            let deg_y = final_deg.get(&y).copied().unwrap_or(0);
            let a = deg_x - beta_x;
            let b = deg_y - beta_y;
            let c_minus = est.c;
            let c_plus = a + b;
            if c_plus == 0 {
                continue; // nothing new adjacent to r1 in this batch
            }
            let total = c_minus + c_plus;
            let phi = self.rng.gen_range(1..=total);
            est.c = total;
            if phi <= c_minus {
                // Keep the existing level-2 edge (and any closed triangle).
                continue;
            }
            // A new level-2 edge will come from this batch; the triangle (if
            // any) is no longer valid.
            est.r2 = None;
            est.closer = None;
            let (vertex, target_degree) = if phi <= c_minus + a {
                (x, beta_x + (phi - c_minus))
            } else {
                (y, beta_y + (phi - c_minus - a))
            };
            subscriptions
                .entry((vertex, target_degree))
                .or_default()
                .push(idx as u32);
        }

        // ---- Step 2c: second edgeIter pass — resolve events to edges. -----
        if !subscriptions.is_empty() {
            let mut deg: HashMap<VertexId, u64> = HashMap::with_capacity(2 * w);
            for (i, e) in batch.iter().enumerate() {
                let position = m + i as u64 + 1;
                for vertex in [e.u(), e.v()] {
                    let d = {
                        let entry = deg.entry(vertex).or_insert(0);
                        *entry += 1;
                        *entry
                    };
                    if let Some(list) = subscriptions.remove(&(vertex, d)) {
                        for est_idx in list {
                            let est = &mut self.estimators[est_idx as usize];
                            est.r2 = Some(PositionedEdge::new(*e, position));
                            est.closer = None;
                        }
                    }
                }
                if subscriptions.is_empty() {
                    break;
                }
            }
            debug_assert!(
                subscriptions.is_empty(),
                "every EVENT_B subscription must resolve within the batch"
            );
        }

        // ---- Step 3: find wedge-closing edges within the batch. -----------
        // Q maps the unique edge that would close each estimator's wedge to
        // the estimators waiting for it.
        let mut waiting: HashMap<Edge, Vec<u32>> = HashMap::new();
        for (idx, est) in self.estimators.iter().enumerate() {
            if est.closer.is_some() {
                continue;
            }
            let (r1, r2) = match (est.r1, est.r2) {
                (Some(r1), Some(r2)) => (r1, r2),
                _ => continue,
            };
            if let Some(shared) = r1.edge.shared_vertex(&r2.edge) {
                let p = r1
                    .edge
                    .other_endpoint(shared)
                    .expect("edge has two endpoints");
                let q = r2
                    .edge
                    .other_endpoint(shared)
                    .expect("edge has two endpoints");
                if p != q {
                    waiting.entry(Edge::new(p, q)).or_default().push(idx as u32);
                }
            }
        }
        if !waiting.is_empty() {
            for (i, e) in batch.iter().enumerate() {
                let position = m + i as u64 + 1;
                if let Some(list) = waiting.get(e) {
                    for &est_idx in list {
                        let est = &mut self.estimators[est_idx as usize];
                        let r2 = est.r2.expect("waiting estimators have a level-2 edge");
                        if est.closer.is_none() && position > r2.position {
                            est.closer = Some(PositionedEdge::new(*e, position));
                        }
                    }
                }
            }
        }

        self.edges_seen += w as u64;
    }

    /// Per-estimator unbiased triangle estimates (Lemma 3.2).
    pub fn raw_estimates(&self) -> Vec<f64> {
        self.estimators
            .iter()
            .map(|e| e.triangle_estimate(self.edges_seen))
            .collect()
    }

    /// The aggregated triangle-count estimate.
    pub fn estimate(&self) -> f64 {
        let raw = self.raw_estimates();
        match self.aggregation {
            Aggregation::Mean => mean(&raw),
            Aggregation::MedianOfMeans { groups } => median_of_means(&raw, groups),
        }
    }

    /// Number of estimators currently holding a triangle.
    pub fn estimators_with_triangle(&self) -> usize {
        self.estimators.iter().filter(|e| e.has_triangle()).count()
    }

    /// The aggregated estimate under an explicit aggregation (ablations).
    pub fn estimate_with(&self, aggregation: Aggregation) -> f64 {
        let raw = self.raw_estimates();
        match aggregation {
            Aggregation::Mean => mean(&raw),
            Aggregation::MedianOfMeans { groups } => median_of_means(&raw, groups),
        }
    }
}

impl crate::traits::TriangleEstimator for BulkTriangleCounter {
    /// A single edge is a batch of one — distributionally identical to the
    /// one-at-a-time counter (the property `bulk::tests` checks).
    fn process_edge(&mut self, edge: Edge) {
        self.process_batch(&[edge]);
    }

    /// One call, one batch: callers control the batch boundary, so feeding
    /// the same chunks through the trait or through
    /// [`BulkTriangleCounter::process_batch`] is bit-identical per seed.
    fn process_edges(&mut self, edges: &[Edge]) {
        self.process_batch(edges);
    }

    fn estimate(&self) -> f64 {
        BulkTriangleCounter::estimate(self)
    }

    fn edges_seen(&self) -> u64 {
        BulkTriangleCounter::edges_seen(self)
    }

    /// `r` fixed-size [`EstimatorState`]s; the `O(w)` per-batch scratch is
    /// transient and therefore excluded by the convention.
    fn memory_words(&self) -> usize {
        crate::traits::words_for_bytes(self.estimator_memory_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap as StdHashMap;
    use tristream_graph::exact::{count_triangles, edge_neighborhood_sizes};
    use tristream_graph::{Adjacency, EdgeStream};

    fn k_n_edges(n: u64) -> Vec<Edge> {
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                edges.push(Edge::new(i, j));
            }
        }
        edges
    }

    /// Checks the paper's state invariants for every estimator against the
    /// exact stream: c = |N(r1)|, r2 ∈ N(r1), positions consistent, closer
    /// really closes the wedge after r2.
    fn assert_invariants(counter: &BulkTriangleCounter, stream: &EdgeStream) {
        let exact_c = edge_neighborhood_sizes(stream);
        let positions: StdHashMap<Edge, u64> =
            stream.iter_positioned().map(|(p, e)| (e, p)).collect();
        for (i, est) in counter.estimators().iter().enumerate() {
            let r1 = est.r1.expect("non-empty stream yields a level-1 edge");
            assert_eq!(
                positions[&r1.edge], r1.position,
                "estimator {i}: r1 position"
            );
            assert_eq!(
                est.c, exact_c[&r1.edge],
                "estimator {i}: c must equal |N(r1)| for r1 {:?}",
                r1.edge
            );
            if let Some(r2) = est.r2 {
                assert_eq!(
                    positions[&r2.edge], r2.position,
                    "estimator {i}: r2 position"
                );
                assert!(
                    r2.position > r1.position,
                    "estimator {i}: r2 arrives after r1"
                );
                assert!(
                    r2.edge.is_adjacent(&r1.edge),
                    "estimator {i}: r2 adjacent to r1"
                );
            } else {
                assert_eq!(est.c, 0, "estimator {i}: empty neighborhood iff no r2");
            }
            if let Some(closer) = est.closer {
                let r2 = est.r2.expect("closer requires r2");
                assert!(
                    closer.position > r2.position,
                    "estimator {i}: closer after r2"
                );
                assert!(
                    closer.edge.closes_wedge(&r1.edge, &r2.edge),
                    "estimator {i}: closer must close the wedge"
                );
            }
        }
    }

    #[test]
    #[should_panic]
    fn zero_estimators_panics() {
        let _ = BulkTriangleCounter::new(0, 1);
    }

    #[test]
    fn empty_batches_are_noops() {
        let mut c = BulkTriangleCounter::new(8, 1);
        c.process_batch(&[]);
        assert_eq!(c.edges_seen(), 0);
        assert_eq!(c.estimate(), 0.0);
    }

    #[test]
    fn invariants_hold_for_various_batch_sizes() {
        let stream = tristream_gen::planted_triangles(25, 60, 5);
        for &batch_size in &[1usize, 2, 3, 7, 16, 64, 1024] {
            let mut counter = BulkTriangleCounter::new(64, 99);
            counter.process_stream(stream.edges(), batch_size);
            assert_eq!(counter.edges_seen(), stream.len() as u64);
            assert_invariants(&counter, &stream);
        }
    }

    #[test]
    fn invariants_hold_on_hub_heavy_graphs() {
        let stream = tristream_gen::barabasi_albert_shuffled(400, 3, 12);
        let mut counter = BulkTriangleCounter::new(128, 3);
        counter.process_stream(stream.edges(), 37);
        assert_invariants(&counter, &stream);
    }

    #[test]
    fn counts_k8_accurately() {
        let edges = k_n_edges(8);
        let truth = 56.0;
        let mut c = BulkTriangleCounter::new(4_000, 21);
        c.process_stream(&edges, 5);
        let est = c.estimate();
        assert!((est - truth).abs() < 0.15 * truth, "estimate {est}");
    }

    #[test]
    fn batch_size_does_not_change_the_distribution() {
        // The estimate averaged over seeds must be unbiased regardless of the
        // batch size, and roughly equal across batch sizes.
        let stream = tristream_gen::planted_triangles(30, 90, 8);
        let truth = 30.0;
        let mut means = Vec::new();
        for &batch_size in &[1usize, 8, 97, 4096] {
            let mut sum = 0.0;
            let runs = 40u64;
            for seed in 0..runs {
                let mut c = BulkTriangleCounter::new(256, seed);
                c.process_stream(stream.edges(), batch_size);
                sum += c.estimate();
            }
            means.push(sum / runs as f64);
        }
        for (i, m) in means.iter().enumerate() {
            assert!(
                (m - truth).abs() < 0.25 * truth,
                "batch-size case {i}: mean {m}, truth {truth}"
            );
        }
    }

    #[test]
    fn bulk_matches_one_at_a_time_statistically() {
        // Same number of estimators, same stream: the two implementations
        // must produce estimates with the same expectation.
        use crate::counter::TriangleCounter;
        let stream = tristream_gen::holme_kim(300, 3, 0.6, 9);
        let truth = count_triangles(&Adjacency::from_stream(&stream)) as f64;
        let runs = 30u64;
        let (mut bulk_sum, mut single_sum) = (0.0, 0.0);
        for seed in 0..runs {
            let mut bulk = BulkTriangleCounter::new(512, seed);
            bulk.process_stream(stream.edges(), 128);
            bulk_sum += bulk.estimate();
            let mut single = TriangleCounter::new(512, seed);
            single.process_edges(stream.edges());
            single_sum += single.estimate();
        }
        let bulk_mean = bulk_sum / runs as f64;
        let single_mean = single_sum / runs as f64;
        assert!(
            (bulk_mean - truth).abs() < 0.3 * truth,
            "bulk mean {bulk_mean}, truth {truth}"
        );
        assert!(
            (single_mean - truth).abs() < 0.3 * truth,
            "single mean {single_mean}, truth {truth}"
        );
    }

    #[test]
    fn triangle_free_stream_estimates_zero() {
        let stream = tristream_gen::complete_bipartite(20, 20);
        let mut c = BulkTriangleCounter::new(512, 4);
        c.process_stream(stream.edges(), 64);
        assert_eq!(c.estimate(), 0.0);
        assert_eq!(c.estimators_with_triangle(), 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let edges = k_n_edges(10);
        let mut a = BulkTriangleCounter::new(200, 5);
        let mut b = BulkTriangleCounter::new(200, 5);
        a.process_stream(&edges, 7);
        b.process_stream(&edges, 7);
        assert_eq!(a.estimate(), b.estimate());
    }

    #[test]
    fn geometric_skip_strategy_preserves_invariants_and_accuracy() {
        let stream = tristream_gen::planted_triangles(30, 80, 13);
        for &batch_size in &[3usize, 17, 256] {
            let mut counter =
                BulkTriangleCounter::new(96, 7).with_level1_strategy(Level1Strategy::GeometricSkip);
            assert_eq!(counter.level1_strategy(), Level1Strategy::GeometricSkip);
            counter.process_stream(stream.edges(), batch_size);
            assert_invariants(&counter, &stream);
        }
        // Accuracy: average over seeds stays near the truth.
        let truth = 30.0;
        let runs = 40u64;
        let mut sum = 0.0;
        for seed in 0..runs {
            let mut counter = BulkTriangleCounter::new(256, seed)
                .with_level1_strategy(Level1Strategy::GeometricSkip);
            counter.process_stream(stream.edges(), 64);
            sum += counter.estimate();
        }
        let mean_est = sum / runs as f64;
        assert!(
            (mean_est - truth).abs() < 0.25 * truth,
            "geometric-skip mean {mean_est}, truth {truth}"
        );
    }

    #[test]
    fn memory_accounting_scales_with_the_pool() {
        let small = BulkTriangleCounter::new(10, 1);
        let large = BulkTriangleCounter::new(1_000, 1);
        assert_eq!(
            large.estimator_memory_bytes(),
            100 * small.estimator_memory_bytes()
        );
        assert!(small.estimator_memory_bytes() > 0);
    }

    #[test]
    fn median_of_means_aggregation_is_available() {
        let edges = k_n_edges(9);
        let mut c = BulkTriangleCounter::with_aggregation(
            2_000,
            3,
            Aggregation::MedianOfMeans { groups: 8 },
        );
        c.process_stream(&edges, 50);
        let truth = 84.0;
        assert!((c.estimate() - truth).abs() < 0.3 * truth);
        assert!((c.estimate_with(Aggregation::Mean) - truth).abs() < 0.3 * truth);
    }
}
