//! Bulk (batched) processing of the edge stream — §3.3 of the paper,
//! Theorem 3.5.
//!
//! Processing each edge through all `r` estimators costs `O(m·r)` total
//! time. The bulk algorithm instead ingests a *batch* of `w` edges and
//! advances all estimators to the state they would reach after observing the
//! batch one edge at a time, in only `O(r + w)` time and `O(r + w)` working
//! space:
//!
//! 1. **Level-1 resampling** — one reservoir draw per estimator over
//!    "old stream vs. this batch".
//! 2. **Level-2 candidate tracking** — the candidate set `N(r₁) ∩ B` is
//!    characterised implicitly by vertex degrees within the batch
//!    (Observation 3.6). A first pass of the degree-keeping edge iterator
//!    (`edgeIter`, Algorithm 2) records, for each estimator, the batch
//!    degrees of `r₁`'s endpoints at the moment `r₁` arrived (β values) and
//!    at the end of the batch; a single `randInt` per estimator then decides
//!    whether to keep the current `r₂` or subscribe to the EVENT_B that will
//!    produce the new one (Algorithm 3), and a second pass resolves those
//!    subscriptions to concrete edges.
//! 3. **Wedge closing** — a hash table keyed by the (unique) edge that would
//!    close each estimator's wedge is consulted while scanning the batch.
//!
//! The result is *distributionally identical* to one-at-a-time processing:
//! every estimator ends the batch with `r₁` uniform over the whole stream,
//! `r₂` uniform over `N(r₁)`, `c = |N(r₁)|`, and the closing edge found iff
//! one arrived after `r₂` — the property the accuracy theorems rely on and
//! the property the test suite checks explicitly.
//!
//! # The hot-path implementation
//!
//! The `O(r + w)` bound says nothing about constants, and the constants are
//! where the original implementation left throughput on the table: an
//! array-of-structs pool of `Option`-heavy 104-byte states, five std
//! `HashMap`s (SipHash) and several `Vec`s allocated *per batch*, and one
//! RNG call per draw. This implementation keeps the algorithm and fixes
//! the constants:
//!
//! * the pool is the struct-of-arrays [`EstimatorPool`] — each step streams
//!   through contiguous columns, and Step 3's "who still awaits a closer"
//!   scan is a `r2_set & !closer_set` bitset word walk;
//! * all per-batch scratch (the replaced-estimator list, β columns, the
//!   batch-degree table, EVENT_B subscriptions and the closing-edge index)
//!   lives in a reusable `BatchScratch` that is **cleared, not
//!   reallocated**, between batches — the steady state performs zero heap
//!   allocations per batch (pinned by `tests/alloc_steady_state.rs`);
//! * the degree/subscription/closing tables are [`FastMap`]s — deterministic
//!   open addressing over packed `(u64, u64)` keys with a multiply-shift
//!   hash seeded from the counter's construction seed, so runs stay
//!   reproducible; multi-subscriber events chain through per-estimator
//!   `next` columns instead of per-key `Vec`s;
//! * RNG draws go through the [`BufferedRng`] — one buffer refill per
//!   couple hundred draws, consumed strictly in order.
//!
//! Because every logical draw consumes exactly one `u64` of the generator
//! stream in the same order as before, the counter is **bit-identical** to
//! the retained pre-pool implementation
//! ([`crate::reference::ReferenceBulkCounter`]) for any seed and any batch
//! boundaries — a stronger property than the distributional identity the
//! theorem needs, and the one `tests/pool_equivalence.rs` pins.

use crate::counter::Aggregation;
use crate::estimator::EstimatorState;
use crate::fastmap::FastMap;
use crate::lanes::{lemire4, LANES};

use crate::pool::{BufferedRng, EstimatorPool, POOL_COLUMNS, RNG_BUFFER_LEN};
use rand::Rng;
use tristream_graph::snapshot::{put_u64s, SnapshotError, SnapshotReader, SnapshotWriter};
use tristream_graph::Edge;
use tristream_sample::{mean, median_of_means, salted_seed, splitmix64, GeometricSkip};

/// How Step 1 (level-1 resampling) walks over the estimator pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Level1Strategy {
    /// One reservoir draw per estimator per batch — the straightforward
    /// `O(r)` implementation of the conceptual algorithm.
    #[default]
    PerEstimator,
    /// The §4 optimisation: as the stream grows, the per-estimator
    /// replacement probability `w/(m+w)` shrinks, so instead of touching all
    /// `r` estimators the implementation draws geometric gaps between the
    /// estimators that actually replace their level-1 edge and skips the
    /// rest. Expected work per batch is `O(r·w/(m+w) + w)`.
    GeometricSkip,
}

/// Which kernel [`BulkTriangleCounter::process_batch`] dispatches to.
///
/// Both kernels are always compiled and produce **bit-identical** results:
/// [`Lanes`](Self::Lanes) consumes the RNG stream in exactly the order
/// [`Scalar`](Self::Scalar) does (and therefore in the order of
/// [`crate::reference::ReferenceBulkCounter`]); it differs only in memory
/// schedule — u64×4 draw groups with scalar remainder loops, whole-word
/// `BitSet` replacement masks, and batched multiply-shift hashing with
/// probe-start prefetching for the [`FastMap`] scratch tables (see
/// [`crate::lanes`]). The `simd` cargo feature (default on) selects which
/// kernel `Default` resolves to; [`BulkTriangleCounter::with_kernel`]
/// overrides it per instance, which is how the equivalence proptests and
/// CI's `--no-default-features` perf run pin both paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BulkKernel {
    /// Hand-unrolled u64×4 lane kernels ([`crate::lanes`]).
    Lanes,
    /// The straight-line per-estimator / per-edge loops.
    Scalar,
}

impl Default for BulkKernel {
    fn default() -> Self {
        if cfg!(feature = "simd") {
            Self::Lanes
        } else {
            Self::Scalar
        }
    }
}

/// Chain terminator for the per-estimator `next` columns in
/// [`BatchScratch`].
const CHAIN_END: u32 = u32::MAX;

/// Reusable per-batch working state. Everything here is sized once (to
/// `O(r)` at construction, to `O(w)` on the first batch of a given size)
/// and then cleared between batches — `process_batch` never allocates in
/// the steady state.
#[derive(Debug, Clone)]
struct BatchScratch {
    /// `(estimator, batch index)` pairs replaced in Step 1, in estimator
    /// order; sorted by batch index for the Step-2a merge.
    replaced: Vec<(u32, u32)>,
    /// β values per estimator, in the `(u, v)` order of the level-1 edge.
    /// All-zero between batches (entries touched this batch are re-zeroed
    /// at the end, so the reset is `O(|replaced|)`, not `O(r)`).
    beta_u: Vec<u64>,
    beta_v: Vec<u64>,
    /// Per-edge endpoint occurrence numbers, recorded during the Step-2a
    /// scan: entry `i` holds the batch degrees of `batch[i]`'s endpoints
    /// *at* that edge (the degree after counting it). Step 2c resolves
    /// EVENT_B subscriptions straight off these columns instead of
    /// replaying the batch through a second degree-table pass.
    edge_du: Vec<u64>,
    edge_dv: Vec<u64>,
    /// Batch-degree table, keyed `(vertex, 0)`; reused by both `edgeIter`
    /// passes.
    deg: FastMap<u64>,
    /// EVENT_B subscriptions: `(vertex, target degree)` → chain head, with
    /// the chain threaded through `sub_next`.
    subs: FastMap<u32>,
    sub_next: Vec<u32>,
    /// Closing-edge index: packed `(u, v)` → chain head, threaded through
    /// `wait_next`.
    waiting: FastMap<u32>,
    wait_next: Vec<u32>,
}

impl BatchScratch {
    /// Scratch for a pool of `r` estimators, with the hash seeds derived
    /// from `hash_seed` (itself derived from the counter's seed — see
    /// [`BulkTriangleCounter::with_aggregation`]).
    fn new(r: usize, hash_seed: u64) -> Self {
        let mut subs = FastMap::with_seed(hash_seed ^ 0x5B5B);
        let mut waiting = FastMap::with_seed(hash_seed ^ 0xC7C7);
        // Both tables hold at most one entry per estimator; reserving the
        // bound up front means no growth can happen mid-batch.
        subs.reserve(r);
        waiting.reserve(r);
        Self {
            replaced: Vec::with_capacity(r),
            beta_u: vec![0; r],
            beta_v: vec![0; r],
            edge_du: Vec::new(),
            edge_dv: Vec::new(),
            deg: FastMap::with_seed(hash_seed),
            subs,
            sub_next: vec![0; r],
            waiting,
            wait_next: vec![0; r],
        }
    }

    /// Readies the scratch for a batch of `w` edges: clears the maps
    /// (`O(1)` generation bumps) and makes sure the degree table can absorb
    /// `2w` endpoints without growing mid-batch.
    fn prepare(&mut self, w: usize) {
        self.replaced.clear();
        self.deg.clear();
        self.deg.reserve(2 * w);
        self.edge_du.resize(w, 0);
        self.edge_dv.resize(w, 0);
        self.subs.clear();
        self.waiting.clear();
    }
}

// The helpers below are the shared bodies of the per-item work both kernels
// perform — the lane kernel calls them with precomputed probe starts, the
// scalar kernel without. They run inside the batch hot loop.
// analyze: region(no-alloc)

/// Increments the batch degree of `vertex`, returning the new value.
#[inline]
fn bump_degree(deg: &mut FastMap<u64>, vertex: u64) -> u64 {
    let d = deg.get_mut_or_insert((vertex, 0), 0);
    *d += 1;
    *d
}

/// [`bump_degree`] probing from a precomputed start index.
#[inline]
fn bump_degree_from(deg: &mut FastMap<u64>, start: usize, vertex: u64) -> u64 {
    let d = deg.get_mut_or_insert_from(start, (vertex, 0), 0);
    *d += 1;
    *d
}

/// The Step-2a merge body: stores edge `i`'s endpoint occurrence numbers
/// (the degree columns Step 2c resolves events against), then lets
/// estimators whose new level-1 edge is `batch[i]` record the endpoint
/// degrees at that moment (the β values).
#[inline]
fn record_betas(
    scratch: &mut BatchScratch,
    pool: &EstimatorPool,
    i: usize,
    e: &Edge,
    du: u64,
    dv: u64,
    next_replaced: &mut usize,
) {
    scratch.edge_du[i] = du;
    scratch.edge_dv[i] = dv;
    while *next_replaced < scratch.replaced.len()
        && scratch.replaced[*next_replaced].1 as usize == i
    {
        let est = scratch.replaced[*next_replaced].0 as usize;
        debug_assert_eq!(pool.r1_edge(est), Some(*e));
        scratch.beta_u[est] = du;
        scratch.beta_v[est] = dv;
        *next_replaced += 1;
    }
}

/// The Step-2b per-estimator body: one `randInt` decides whether estimator
/// `idx` keeps its level-2 edge or subscribes to the EVENT_B that produces
/// the new one. Returns whether a subscription was added. Called in
/// estimator-index order by both kernels, so the RNG consumption order is
/// identical.
#[inline]
fn step2b_estimator(
    pool: &mut EstimatorPool,
    scratch: &mut BatchScratch,
    rng: &mut BufferedRng,
    idx: usize,
    deg_x: u64,
    deg_y: u64,
) -> bool {
    let x = pool.r1_u[idx];
    let y = pool.r1_v[idx];
    let beta_x = scratch.beta_u[idx];
    let beta_y = scratch.beta_v[idx];
    let a = deg_x - beta_x;
    let b = deg_y - beta_y;
    let c_minus = pool.c[idx];
    let c_plus = a + b;
    if c_plus == 0 {
        return false; // nothing new adjacent to r1 in this batch
    }
    let total = c_minus + c_plus;
    let phi = rng.gen_range(1..=total);
    pool.c[idx] = total;
    if phi <= c_minus {
        // Keep the existing level-2 edge (and any closed triangle).
        return false;
    }
    // A new level-2 edge will come from this batch; the triangle (if any)
    // is no longer valid.
    pool.drop_r2(idx);
    let (vertex, target_degree) = if phi <= c_minus + a {
        (x, beta_x + (phi - c_minus))
    } else {
        (y, beta_y + (phi - c_minus - a))
    };
    let head = scratch
        .subs
        .insert((vertex, target_degree), idx as u32)
        .unwrap_or(CHAIN_END);
    scratch.sub_next[idx] = head;
    true
}

/// The Step-2c per-edge body: resolve any EVENT_B subscriptions that fire
/// at edge `i`'s endpoint occurrence numbers (recorded by the Step-2a
/// scan — no second degree-table pass). `starts` carries the precomputed
/// `(u, du)`/`(v, dv)` probe starts under the lane kernel.
#[inline]
fn step2c_edge(
    pool: &mut EstimatorPool,
    scratch: &mut BatchScratch,
    e: &Edge,
    position: u64,
    i: usize,
    starts: Option<(usize, usize)>,
    pending_subs: &mut usize,
) {
    let keys = [
        (e.u().raw(), scratch.edge_du[i]),
        (e.v().raw(), scratch.edge_dv[i]),
    ];
    for (slot, key) in keys.into_iter().enumerate() {
        let head = match starts {
            Some(s) => scratch
                .subs
                .get_from(if slot == 0 { s.0 } else { s.1 }, key),
            None => scratch.subs.get(key),
        };
        if let Some(head) = head {
            let mut cursor = head;
            while cursor != CHAIN_END {
                let est = cursor as usize;
                pool.take_r2(est, *e, position);
                cursor = scratch.sub_next[est];
                *pending_subs -= 1;
            }
        }
    }
}

/// The Step-3 chain walk: `head` is the `waiting` chain of estimators
/// whose wedge `batch[i]` closes.
#[inline]
fn close_wedges(
    pool: &mut EstimatorPool,
    scratch: &BatchScratch,
    e: &Edge,
    position: u64,
    head: u32,
) {
    let mut cursor = head;
    while cursor != CHAIN_END {
        let est = cursor as usize;
        if !pool.closer_set.get(est) && position > pool.r2_pos[est] {
            pool.take_closer(est, *e, position);
        }
        cursor = scratch.wait_next[est];
    }
}

/// Probe starts for the `(endpoint, 0)` degree keys of the edge lane group
/// starting at `base`, prefetched so the upserts one group later hit warm
/// cache lines. Requires `base + LANES <= batch.len()`.
#[inline]
fn hash_edge_group(
    deg: &FastMap<u64>,
    batch: &[Edge],
    base: usize,
) -> ([usize; LANES], [usize; LANES]) {
    let mut us = [0u64; LANES];
    let mut vs = [0u64; LANES];
    for (lane, e) in batch[base..base + LANES].iter().enumerate() {
        us[lane] = e.u().raw();
        vs[lane] = e.v().raw();
    }
    let su = deg.probe_start4(us, [0; LANES]);
    let sv = deg.probe_start4(vs, [0; LANES]);
    for lane in 0..LANES {
        deg.prefetch_slot(su[lane]);
        deg.prefetch_slot(sv[lane]);
    }
    (su, sv)
}

/// Probe starts for the level-1 endpoint degree lookups of the estimator
/// lane group starting at `base` (Step 2b). Estimators without a level-1
/// edge hash whatever stale column values they hold — harmless, since the
/// lookup is skipped for them.
#[inline]
fn hash_r1_group(
    deg: &FastMap<u64>,
    pool: &EstimatorPool,
    base: usize,
) -> ([usize; LANES], [usize; LANES]) {
    let mut xs = [0u64; LANES];
    let mut ys = [0u64; LANES];
    xs.copy_from_slice(&pool.r1_u[base..base + LANES]);
    ys.copy_from_slice(&pool.r1_v[base..base + LANES]);
    let sx = deg.probe_start4(xs, [0; LANES]);
    let sy = deg.probe_start4(ys, [0; LANES]);
    for lane in 0..LANES {
        deg.prefetch_slot(sx[lane]);
        deg.prefetch_slot(sy[lane]);
    }
    (sx, sy)
}

/// Probe starts for the EVENT_B subscription lookups of the edge lane
/// group starting at `base` (Step 2c): the `(endpoint, occurrence)` keys
/// come straight off the `edge_du`/`edge_dv` columns the Step-2a scan
/// recorded.
#[inline]
fn hash_sub_group(
    scratch: &BatchScratch,
    batch: &[Edge],
    base: usize,
) -> ([usize; LANES], [usize; LANES]) {
    let mut us = [0u64; LANES];
    let mut vs = [0u64; LANES];
    let mut dus = [0u64; LANES];
    let mut dvs = [0u64; LANES];
    for (lane, e) in batch[base..base + LANES].iter().enumerate() {
        us[lane] = e.u().raw();
        vs[lane] = e.v().raw();
        dus[lane] = scratch.edge_du[base + lane];
        dvs[lane] = scratch.edge_dv[base + lane];
    }
    let su = scratch.subs.probe_start4(us, dus);
    let sv = scratch.subs.probe_start4(vs, dvs);
    (su, sv)
}

/// Probe starts for the closing-edge lookups of the edge lane group
/// starting at `base` (Step 3). Edge endpoints are stored normalised
/// (`u < v`), matching the `(min, max)` keys the wedge scan inserts.
#[inline]
fn hash_pair_group(waiting: &FastMap<u32>, batch: &[Edge], base: usize) -> [usize; LANES] {
    let mut us = [0u64; LANES];
    let mut vs = [0u64; LANES];
    for (lane, e) in batch[base..base + LANES].iter().enumerate() {
        us[lane] = e.u().raw();
        vs[lane] = e.v().raw();
    }
    waiting.probe_start4(us, vs)
}
// analyze: endregion

/// Streaming triangle counter that ingests edges in batches in
/// `O(r + w)` time per batch (Theorem 3.5), built on the struct-of-arrays
/// [`EstimatorPool`] (see the [module docs](self) for the data layout).
#[derive(Debug, Clone)]
pub struct BulkTriangleCounter {
    pool: EstimatorPool,
    scratch: BatchScratch,
    edges_seen: u64,
    rng: BufferedRng,
    /// Construction seed, kept so snapshots can rebuild the scratch-table
    /// hash seeds (a pure SplitMix64 derivation of it) on restore.
    seed: u64,
    aggregation: Aggregation,
    level1_strategy: Level1Strategy,
    kernel: BulkKernel,
}

impl BulkTriangleCounter {
    /// Creates a bulk counter with `r` estimators and plain-mean aggregation.
    ///
    /// # Panics
    ///
    /// Panics if `r` is zero.
    pub fn new(r: usize, seed: u64) -> Self {
        Self::with_aggregation(r, seed, Aggregation::Mean)
    }

    /// Creates a bulk counter with an explicit aggregation strategy.
    ///
    /// The scratch hash tables are seeded with a SplitMix64 derivation of
    /// `seed` (not with draws from the estimator RNG stream, which must
    /// stay bit-compatible with the reference implementation), so the whole
    /// run — estimates *and* table layouts — is a pure function of `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is zero, or if a median-of-means aggregation requests
    /// zero groups.
    pub fn with_aggregation(r: usize, seed: u64, aggregation: Aggregation) -> Self {
        assert!(r > 0, "at least one estimator is required");
        if let Aggregation::MedianOfMeans { groups } = aggregation {
            assert!(groups > 0, "median-of-means needs at least one group");
        }
        let hash_seed = Self::hash_seed(seed);
        Self {
            pool: EstimatorPool::new(r),
            scratch: BatchScratch::new(r, hash_seed),
            edges_seen: 0,
            rng: BufferedRng::seed_from_u64(seed),
            seed,
            aggregation,
            level1_strategy: Level1Strategy::default(),
            kernel: BulkKernel::default(),
        }
    }

    /// The scratch-table hash seed: a SplitMix64 derivation of the
    /// construction seed, shared by the constructor and snapshot restore.
    fn hash_seed(seed: u64) -> u64 {
        splitmix64(salted_seed(seed, 0xB0_1D_FA_CE_0F_F1_CE_5E))
    }

    /// Selects which hot-path kernel [`process_batch`](Self::process_batch)
    /// dispatches to (see [`BulkKernel`]); returns `self` for builder-style
    /// chaining. Both kernels produce bit-identical estimates — this only
    /// picks the memory schedule.
    pub fn with_kernel(mut self, kernel: BulkKernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// The hot-path kernel in use.
    pub fn kernel(&self) -> BulkKernel {
        self.kernel
    }

    /// Selects how level-1 resampling iterates over the pool (see
    /// [`Level1Strategy`]); returns `self` for builder-style chaining.
    pub fn with_level1_strategy(mut self, strategy: Level1Strategy) -> Self {
        self.level1_strategy = strategy;
        self
    }

    /// The level-1 resampling strategy in use.
    pub fn level1_strategy(&self) -> Level1Strategy {
        self.level1_strategy
    }

    /// Resident memory of the estimator pool in bytes — ten `u64` columns
    /// plus three presence bitsets per [`EstimatorPool`]. The paper reports
    /// "36 bytes per estimator" for its C++ implementation; the pool costs
    /// 80 bytes + 3 bits because it keeps full endpoints and positions for
    /// the sampler and the test invariants. Per-batch scratch is working
    /// memory of the batch, not sketch state, and is excluded (the same
    /// exclusion the pre-pool counter applied to its transient maps).
    pub fn estimator_memory_bytes(&self) -> usize {
        self.pool.resident_bytes()
    }

    /// Accounting words one estimator costs in the pool (the registry's
    /// sizing unit): [`crate::pool::POOL_COLUMNS`] `u64`s; the three
    /// presence bits per estimator amortise to under half a word per 64
    /// estimators and are covered by the measured
    /// [`estimator_memory_bytes`](Self::estimator_memory_bytes). The `simd`
    /// lane kernels ([`BulkKernel::Lanes`]) read and write these same
    /// columns in u64×4 groups — no shadow state, no padding, no extra
    /// columns — so this accounting is identical under both kernels and
    /// equal-memory head-to-head budgets stay honest.
    pub fn words_per_estimator() -> usize {
        crate::pool::POOL_COLUMNS
    }

    /// Number of estimators `r`.
    pub fn num_estimators(&self) -> usize {
        self.pool.len()
    }

    /// Number of edges observed so far (`m`).
    pub fn edges_seen(&self) -> u64 {
        self.edges_seen
    }

    /// The estimator states, materialised from the pool columns into the
    /// scalar [`EstimatorState`] representation (tests, inspection — not a
    /// hot path).
    pub fn estimators(&self) -> Vec<EstimatorState> {
        self.pool.states()
    }

    /// Processes a whole stream by cutting it into batches of `batch_size`
    /// edges. A batch size of `Θ(r)` (the paper suggests `w = 8r` in the
    /// experiments) gives `O(m + r)` total time.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    pub fn process_stream(&mut self, edges: &[Edge], batch_size: usize) {
        assert!(batch_size > 0, "batch size must be positive");
        for chunk in edges.chunks(batch_size) {
            self.process_batch(chunk);
        }
    }

    /// Ingests one batch of edges, advancing every estimator as if the edges
    /// had been processed one at a time in order. Dispatches to one of two
    /// monomorphised kernels (see [`BulkKernel`]); both are allocation-free
    /// in the steady state: all working memory comes from the reused
    /// `BatchScratch` (the region below lets `tristream-analyze` reject
    /// allocating tokens at review time; `tests/alloc_steady_state.rs` pins
    /// the runtime behaviour).
    pub fn process_batch(&mut self, batch: &[Edge]) {
        match self.kernel {
            BulkKernel::Lanes => self.process_batch_impl::<true>(batch),
            BulkKernel::Scalar => self.process_batch_impl::<false>(batch),
        }
    }

    /// The batch pipeline, monomorphised over the kernel choice: with
    /// `LANES_ON` the steps run in u64×4 lane groups (scalar remainder
    /// loops pick up the tail), RNG draws come in [`LANES`]-wide groups in
    /// the *same order* the scalar path consumes them, Step-1 presence bits
    /// are written as whole-word masks, and every [`FastMap`] access in the
    /// edge scans probes from a start index hashed one lane group ahead and
    /// prefetched. With `LANES_ON = false` this is the plain per-item loop.
    // analyze: region(no-alloc)
    fn process_batch_impl<const LANES_ON: bool>(&mut self, batch: &[Edge]) {
        let w = batch.len();
        if w == 0 {
            return;
        }
        let m = self.edges_seen;
        let r = self.pool.len();
        let pool = &mut self.pool;
        let scratch = &mut self.scratch;
        scratch.prepare(w);

        // ---- Step 1: level-1 reservoir over (old stream) ++ (batch). ------
        match self.level1_strategy {
            Level1Strategy::PerEstimator => {
                let total = m + w as u64;
                if LANES_ON {
                    // Draw a lane group of reservoir positions at a time and
                    // accumulate each 64-estimator word's replacement mask,
                    // so the three presence bitsets are updated with three
                    // word operations instead of three bit operations per
                    // replaced estimator.
                    let mut idx = 0usize;
                    for word_idx in 0..pool.r1_set.words().len() {
                        let word_end = ((word_idx + 1) * 64).min(r);
                        let mut mask = 0u64;
                        while idx + LANES <= word_end {
                            let draws = lemire4(self.rng.next_lane(), total);
                            for (lane, draw) in draws.into_iter().enumerate() {
                                if draw >= m {
                                    let i = idx + lane;
                                    let k = (draw - m) as usize;
                                    pool.set_r1_columns(i, batch[k], m + k as u64 + 1);
                                    mask |= 1u64 << (i % 64);
                                    scratch.replaced.push((i as u32, k as u32));
                                }
                            }
                            idx += LANES;
                        }
                        // Scalar remainder: the tail of the final word.
                        while idx < word_end {
                            let draw = self.rng.gen_range(0..total);
                            if draw >= m {
                                let k = (draw - m) as usize;
                                pool.set_r1_columns(idx, batch[k], m + k as u64 + 1);
                                mask |= 1u64 << (idx % 64);
                                scratch.replaced.push((idx as u32, k as u32));
                            }
                            idx += 1;
                        }
                        if mask != 0 {
                            pool.apply_r1_word(word_idx, mask);
                        }
                    }
                } else {
                    for idx in 0..r {
                        let draw = self.rng.gen_range(0..total);
                        if draw >= m {
                            let k = (draw - m) as usize;
                            pool.take_r1(idx, batch[k], m + k as u64 + 1);
                            scratch.replaced.push((idx as u32, k as u32));
                        }
                    }
                }
            }
            Level1Strategy::GeometricSkip => {
                // Each estimator replaces independently with probability
                // w/(m+w); enumerate only the successes via geometric gaps
                // (the §4 optimisation). Two phases, reusing the `replaced`
                // list instead of collecting a fresh Vec: first every gap is
                // drawn (including the final out-of-range gap
                // `GeometricSkip::successes_up_to` parks and drops), then
                // every success draws its batch edge — the exact draw order
                // of the reference implementation. The gap walk is
                // inherently sequential (each gap feeds the next cursor),
                // but the per-success draws are independent and run in lane
                // groups under the lane kernel.
                let p = w as f64 / (m + w as u64) as f64;
                let mut skip = GeometricSkip::new(p);
                while let Some(pos) = skip.next_success(&mut self.rng) {
                    if pos > r as u64 {
                        break;
                    }
                    scratch.replaced.push(((pos - 1) as u32, 0));
                }
                if LANES_ON {
                    let n = scratch.replaced.len();
                    let mut i = 0usize;
                    while i + LANES <= n {
                        let ks = lemire4(self.rng.next_lane(), w as u64);
                        for (lane, k) in ks.into_iter().enumerate() {
                            let entry = &mut scratch.replaced[i + lane];
                            let k = k as usize;
                            entry.1 = k as u32;
                            pool.take_r1(entry.0 as usize, batch[k], m + k as u64 + 1);
                        }
                        i += LANES;
                    }
                    for entry in &mut scratch.replaced[i..] {
                        let k = self.rng.gen_range(0..w);
                        entry.1 = k as u32;
                        pool.take_r1(entry.0 as usize, batch[k], m + k as u64 + 1);
                    }
                } else {
                    for entry in &mut scratch.replaced {
                        let idx = entry.0 as usize;
                        let k = self.rng.gen_range(0..w);
                        entry.1 = k as u32;
                        pool.take_r1(idx, batch[k], m + k as u64 + 1);
                    }
                }
            }
        }

        // ---- Step 2a: first edgeIter pass — record β values and degB. -----
        // The replaced list, sorted by batch index, is merged against the
        // batch scan: when the scan reaches index k, every estimator whose
        // new level-1 edge is batch[k] records the endpoint degrees at that
        // moment (the β values). The β columns are all-zero between
        // batches, matching the reference's fresh `vec![(0, 0); r]`.
        scratch.replaced.sort_unstable_by_key(|&(_, k)| k);
        let mut next_replaced = 0usize;
        if LANES_ON {
            let full = w - w % LANES;
            let mut base = 0usize;
            let mut starts = if full > 0 {
                hash_edge_group(&scratch.deg, batch, 0)
            } else {
                ([0; LANES], [0; LANES])
            };
            while base < full {
                let next = if base + LANES < full {
                    Some(hash_edge_group(&scratch.deg, batch, base + LANES))
                } else {
                    None
                };
                for lane in 0..LANES {
                    let i = base + lane;
                    let e = &batch[i];
                    let du = bump_degree_from(&mut scratch.deg, starts.0[lane], e.u().raw());
                    let dv = bump_degree_from(&mut scratch.deg, starts.1[lane], e.v().raw());
                    record_betas(scratch, pool, i, e, du, dv, &mut next_replaced);
                }
                if let Some(n) = next {
                    starts = n;
                }
                base += LANES;
            }
            for (i, e) in batch.iter().enumerate().skip(full) {
                let du = bump_degree(&mut scratch.deg, e.u().raw());
                let dv = bump_degree(&mut scratch.deg, e.v().raw());
                record_betas(scratch, pool, i, e, du, dv, &mut next_replaced);
            }
        } else {
            for (i, e) in batch.iter().enumerate() {
                let du = bump_degree(&mut scratch.deg, e.u().raw());
                let dv = bump_degree(&mut scratch.deg, e.v().raw());
                record_betas(scratch, pool, i, e, du, dv, &mut next_replaced);
            }
        }

        // ---- Step 2b: one randInt per estimator; subscribe to EVENT_B. ----
        let mut pending_subs = 0usize;
        if LANES_ON {
            let full_r = r - r % LANES;
            let mut base = 0usize;
            let mut starts = if full_r > 0 {
                hash_r1_group(&scratch.deg, pool, 0)
            } else {
                ([0; LANES], [0; LANES])
            };
            while base < full_r {
                let next = if base + LANES < full_r {
                    Some(hash_r1_group(&scratch.deg, pool, base + LANES))
                } else {
                    None
                };
                for lane in 0..LANES {
                    let idx = base + lane;
                    if !pool.r1_set.get(idx) {
                        continue;
                    }
                    let deg_x = scratch
                        .deg
                        .get_from(starts.0[lane], (pool.r1_u[idx], 0))
                        .unwrap_or(0);
                    let deg_y = scratch
                        .deg
                        .get_from(starts.1[lane], (pool.r1_v[idx], 0))
                        .unwrap_or(0);
                    if step2b_estimator(pool, scratch, &mut self.rng, idx, deg_x, deg_y) {
                        pending_subs += 1;
                    }
                }
                if let Some(n) = next {
                    starts = n;
                }
                base += LANES;
            }
            for idx in full_r..r {
                if !pool.r1_set.get(idx) {
                    continue;
                }
                let deg_x = scratch.deg.get((pool.r1_u[idx], 0)).unwrap_or(0);
                let deg_y = scratch.deg.get((pool.r1_v[idx], 0)).unwrap_or(0);
                if step2b_estimator(pool, scratch, &mut self.rng, idx, deg_x, deg_y) {
                    pending_subs += 1;
                }
            }
        } else {
            for idx in 0..r {
                if !pool.r1_set.get(idx) {
                    continue;
                }
                let deg_x = scratch.deg.get((pool.r1_u[idx], 0)).unwrap_or(0);
                let deg_y = scratch.deg.get((pool.r1_v[idx], 0)).unwrap_or(0);
                if step2b_estimator(pool, scratch, &mut self.rng, idx, deg_x, deg_y) {
                    pending_subs += 1;
                }
            }
        }
        // Restore the all-zero β invariant for the next batch.
        for &(est, _) in &scratch.replaced {
            scratch.beta_u[est as usize] = 0;
            scratch.beta_v[est as usize] = 0;
        }

        // ---- Step 2c: resolve events against the recorded occurrences. ----
        // The Step-2a scan already recorded every edge's endpoint
        // occurrence numbers in `edge_du`/`edge_dv`, so resolving is a
        // probe of the (small) subscription table per endpoint — no second
        // degree-table pass. Each (vertex, degree) event fires exactly once
        // per batch, so the table never needs deletions; a countdown of
        // pending subscriptions ends the scan early instead.
        if pending_subs > 0 {
            if LANES_ON {
                let full = w - w % LANES;
                let mut base = 0usize;
                let mut starts = if full > 0 {
                    hash_sub_group(scratch, batch, 0)
                } else {
                    ([0; LANES], [0; LANES])
                };
                'groups: while base < full {
                    let next = if base + LANES < full {
                        Some(hash_sub_group(scratch, batch, base + LANES))
                    } else {
                        None
                    };
                    for lane in 0..LANES {
                        let i = base + lane;
                        let position = m + i as u64 + 1;
                        let lane_starts = (starts.0[lane], starts.1[lane]);
                        step2c_edge(
                            pool,
                            scratch,
                            &batch[i],
                            position,
                            i,
                            Some(lane_starts),
                            &mut pending_subs,
                        );
                        if pending_subs == 0 {
                            break 'groups;
                        }
                    }
                    if let Some(n) = next {
                        starts = n;
                    }
                    base += LANES;
                }
                if pending_subs > 0 {
                    for (i, e) in batch.iter().enumerate().skip(full) {
                        let position = m + i as u64 + 1;
                        step2c_edge(pool, scratch, e, position, i, None, &mut pending_subs);
                        if pending_subs == 0 {
                            break;
                        }
                    }
                }
            } else {
                for (i, e) in batch.iter().enumerate() {
                    let position = m + i as u64 + 1;
                    step2c_edge(pool, scratch, e, position, i, None, &mut pending_subs);
                    if pending_subs == 0 {
                        break;
                    }
                }
            }
            debug_assert_eq!(
                pending_subs, 0,
                "every EVENT_B subscription must resolve within the batch"
            );
        }

        // ---- Step 3: find wedge-closing edges within the batch. -----------
        // Candidates are exactly the estimators with a wedge but no closer:
        // one `r2_set & !closer_set` word per 64 estimators, skipping empty
        // words outright (both kernels — the scan was word-parallel before
        // the lane kernels existed and stays shared).
        let mut waiting_count = 0usize;
        for word_idx in 0..pool.r2_set.words().len() {
            let mut bits = pool.r2_set.words()[word_idx] & !pool.closer_set.words()[word_idx];
            while bits != 0 {
                let idx = word_idx * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let r1 = Edge::new(pool.r1_u[idx], pool.r1_v[idx]);
                let r2 = Edge::new(pool.r2_u[idx], pool.r2_v[idx]);
                if let Some(shared) = r1.shared_vertex(&r2) {
                    // Both lookups are infallible — `Edge::new` rejects
                    // self-loops, so `shared` always has a distinct partner —
                    // but the hot path must not carry a panic edge.
                    let (Some(p), Some(q)) = (r1.other_endpoint(shared), r2.other_endpoint(shared))
                    else {
                        debug_assert!(false, "edges always have two distinct endpoints");
                        continue;
                    };
                    if p != q {
                        let key = (p.raw().min(q.raw()), p.raw().max(q.raw()));
                        let head = scratch.waiting.insert(key, idx as u32).unwrap_or(CHAIN_END);
                        scratch.wait_next[idx] = head;
                        waiting_count += 1;
                    }
                }
            }
        }
        if waiting_count > 0 {
            if LANES_ON {
                let full = w - w % LANES;
                let mut base = 0usize;
                let mut starts = if full > 0 {
                    hash_pair_group(&scratch.waiting, batch, 0)
                } else {
                    [0; LANES]
                };
                while base < full {
                    let next = if base + LANES < full {
                        Some(hash_pair_group(&scratch.waiting, batch, base + LANES))
                    } else {
                        None
                    };
                    for (lane, &start) in starts.iter().enumerate() {
                        let i = base + lane;
                        let e = &batch[i];
                        let position = m + i as u64 + 1;
                        if let Some(head) =
                            scratch.waiting.get_from(start, (e.u().raw(), e.v().raw()))
                        {
                            close_wedges(pool, scratch, e, position, head);
                        }
                    }
                    if let Some(n) = next {
                        starts = n;
                    }
                    base += LANES;
                }
                for (i, e) in batch.iter().enumerate().skip(full) {
                    let position = m + i as u64 + 1;
                    if let Some(head) = scratch.waiting.get((e.u().raw(), e.v().raw())) {
                        close_wedges(pool, scratch, e, position, head);
                    }
                }
            } else {
                for (i, e) in batch.iter().enumerate() {
                    let position = m + i as u64 + 1;
                    if let Some(head) = scratch.waiting.get((e.u().raw(), e.v().raw())) {
                        close_wedges(pool, scratch, e, position, head);
                    }
                }
            }
        }

        self.edges_seen += w as u64;
    }
    // analyze: endregion

    /// Per-estimator unbiased triangle estimates (Lemma 3.2).
    pub fn raw_estimates(&self) -> Vec<f64> {
        (0..self.pool.len())
            .map(|i| self.pool.triangle_estimate(i, self.edges_seen))
            .collect()
    }

    /// The aggregated triangle-count estimate.
    pub fn estimate(&self) -> f64 {
        self.estimate_with(self.aggregation)
    }

    /// Number of estimators currently holding a triangle.
    pub fn estimators_with_triangle(&self) -> usize {
        self.pool.triangles_held()
    }

    /// The aggregated estimate under an explicit aggregation (ablations).
    pub fn estimate_with(&self, aggregation: Aggregation) -> f64 {
        let raw = self.raw_estimates();
        match aggregation {
            Aggregation::Mean => mean(&raw),
            Aggregation::MedianOfMeans { groups } => median_of_means(&raw, groups),
        }
    }

    /// Debug-build invariant sweep: [`EstimatorPool::validate`] over the
    /// pool, plus the scratch-side invariants the batch pipeline relies on —
    /// the waiting table stays at ≤ 50 % load (what keeps its open-addressed
    /// probes terminating and O(1)) and the wait-chain column spans the
    /// pool. Returns `true`; compiles to a no-op in release builds.
    #[must_use]
    pub fn validate(&self) -> bool {
        let _ = self.pool.validate();
        debug_assert!(
            2 * self.scratch.waiting.len() <= self.scratch.waiting.capacity(),
            "waiting table over 50% load: {} of {} slots",
            self.scratch.waiting.len(),
            self.scratch.waiting.capacity()
        );
        debug_assert_eq!(
            self.scratch.wait_next.len(),
            self.pool.len(),
            "wait-chain column must span the pool"
        );
        true
    }
}

impl BulkTriangleCounter {
    /// Serialize the complete counter state into a `TSS\0` snapshot
    /// container (layout documented in [`crate::snapshot`]): pool columns,
    /// presence bitsets, RNG state (inner generator + refill buffer +
    /// cursor), stream position, and configuration. Restoring the bytes
    /// and continuing the stream is bit-identical to never having stopped.
    pub fn to_snapshot(&self) -> Result<Vec<u8>, SnapshotError> {
        let r = self.pool.len();
        let mut meta = Vec::with_capacity(35);
        meta.push(crate::snapshot::KIND_BULK);
        put_u64s(&mut meta, &[r as u64, self.seed, self.edges_seen]);
        match self.aggregation {
            Aggregation::Mean => {
                meta.push(0);
                put_u64s(&mut meta, &[0]);
            }
            Aggregation::MedianOfMeans { groups } => {
                meta.push(1);
                put_u64s(&mut meta, &[groups as u64]);
            }
        }
        meta.push(match self.level1_strategy {
            Level1Strategy::PerEstimator => 0,
            Level1Strategy::GeometricSkip => 1,
        });

        let mut columns = Vec::with_capacity(POOL_COLUMNS * r * 8);
        for col in self.pool.snapshot_columns() {
            put_u64s(&mut columns, col);
        }

        let word_count = r.div_ceil(64);
        let mut bitsets = Vec::with_capacity(3 * word_count * 8);
        put_u64s(&mut bitsets, self.pool.r1_set.words());
        put_u64s(&mut bitsets, self.pool.r2_set.words());
        put_u64s(&mut bitsets, self.pool.closer_set.words());

        let (state, buf, pos) = self.rng.snapshot_state();
        let mut rng = Vec::with_capacity((4 + 1 + buf.len()) * 8);
        put_u64s(&mut rng, &state);
        put_u64s(&mut rng, &[pos as u64]);
        put_u64s(&mut rng, buf);

        let mut writer = SnapshotWriter::new();
        writer.section(crate::snapshot::SEC_META, &meta)?;
        writer.section(crate::snapshot::SEC_COLUMNS, &columns)?;
        writer.section(crate::snapshot::SEC_BITSETS, &bitsets)?;
        writer.section(crate::snapshot::SEC_RNG, &rng)?;
        Ok(writer.finish())
    }

    /// Rebuild a counter from [`to_snapshot`](Self::to_snapshot) bytes.
    ///
    /// Structural damage (bad magic, truncation, checksum mismatch,
    /// trailing bytes) surfaces as [`SnapshotError::Corrupt`]; bytes that
    /// decode but describe an impossible counter — zero estimators, a
    /// broken presence-subset chain, an all-zero RNG state, a bad enum tag
    /// — as [`SnapshotError::Incompatible`]. Never panics. The hot-path
    /// kernel is not part of the state: the restored counter uses this
    /// build's default (both kernels are bit-identical).
    pub fn from_snapshot(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let incompatible = |reason: String| SnapshotError::Incompatible { reason };
        let reader = SnapshotReader::parse(bytes)?;

        let mut meta = reader.section(crate::snapshot::SEC_META)?;
        let kind = meta.u8("snapshot kind tag")?;
        if kind != crate::snapshot::KIND_BULK {
            return Err(incompatible(format!(
                "expected a bulk-counter snapshot (kind {}), found kind {kind}",
                crate::snapshot::KIND_BULK
            )));
        }
        let r64 = meta.u64("estimator count")?;
        let seed = meta.u64("construction seed")?;
        let edges_seen = meta.u64("edges seen")?;
        let agg_tag = meta.u8("aggregation tag")?;
        let groups = meta.u64("aggregation group count")?;
        let strategy_tag = meta.u8("level-1 strategy tag")?;
        meta.finish()?;

        let r = usize::try_from(r64)
            .ok()
            .filter(|&r| r > 0)
            .ok_or_else(|| incompatible(format!("estimator count {r64} is not usable")))?;
        let aggregation = match agg_tag {
            0 => Aggregation::Mean,
            1 => {
                let groups = usize::try_from(groups)
                    .ok()
                    .filter(|&g| g > 0)
                    .ok_or_else(|| {
                        incompatible(format!(
                            "median-of-means group count {groups} is not usable"
                        ))
                    })?;
                Aggregation::MedianOfMeans { groups }
            }
            other => return Err(incompatible(format!("unknown aggregation tag {other}"))),
        };
        let level1_strategy = match strategy_tag {
            0 => Level1Strategy::PerEstimator,
            1 => Level1Strategy::GeometricSkip,
            other => {
                return Err(incompatible(format!(
                    "unknown level-1 strategy tag {other}"
                )))
            }
        };

        let mut columns_section = reader.section(crate::snapshot::SEC_COLUMNS)?;
        let mut columns: [Vec<u64>; POOL_COLUMNS] = Default::default();
        for col in &mut columns {
            *col = columns_section.u64_vec(r, "pool column")?;
        }
        columns_section.finish()?;

        let word_count = r.div_ceil(64);
        let mut bitset_section = reader.section(crate::snapshot::SEC_BITSETS)?;
        let r1_words = bitset_section.u64_vec(word_count, "r1 presence bitset")?;
        let r2_words = bitset_section.u64_vec(word_count, "r2 presence bitset")?;
        let closer_words = bitset_section.u64_vec(word_count, "closer presence bitset")?;
        bitset_section.finish()?;
        let pool = EstimatorPool::from_snapshot_parts(r, columns, r1_words, r2_words, closer_words)
            .ok_or_else(|| {
                incompatible("pool state violates the structural invariants".to_owned())
            })?;

        let mut rng_section = reader.section(crate::snapshot::SEC_RNG)?;
        let state_words = rng_section.u64_vec(4, "rng generator state")?;
        let mut state = [0u64; 4];
        state.copy_from_slice(&state_words);
        let pos = rng_section.u64("rng consume cursor")?;
        let buf = rng_section.u64_vec(RNG_BUFFER_LEN, "rng refill buffer")?;
        rng_section.finish()?;
        let rng = usize::try_from(pos)
            .ok()
            .and_then(|pos| BufferedRng::from_snapshot_state(state, buf, pos))
            .ok_or_else(|| {
                incompatible("rng state is not a reachable generator state".to_owned())
            })?;

        Ok(Self {
            pool,
            scratch: BatchScratch::new(r, Self::hash_seed(seed)),
            edges_seen,
            rng,
            seed,
            aggregation,
            level1_strategy,
            kernel: BulkKernel::default(),
        })
    }
}

impl crate::traits::TriangleEstimator for BulkTriangleCounter {
    /// A single edge is a batch of one — distributionally identical to the
    /// one-at-a-time counter (the property `bulk::tests` checks).
    fn process_edge(&mut self, edge: Edge) {
        self.process_batch(&[edge]);
    }

    /// One call, one batch: callers control the batch boundary, so feeding
    /// the same chunks through the trait or through
    /// [`BulkTriangleCounter::process_batch`] is bit-identical per seed.
    fn process_edges(&mut self, edges: &[Edge]) {
        self.process_batch(edges);
    }

    fn estimate(&self) -> f64 {
        BulkTriangleCounter::estimate(self)
    }

    fn edges_seen(&self) -> u64 {
        BulkTriangleCounter::edges_seen(self)
    }

    /// The pool columns and presence bitsets; the `O(r + w)` per-batch
    /// scratch is working memory of the batch and therefore excluded by the
    /// convention, exactly as the pre-pool counter excluded its transient
    /// maps.
    fn memory_words(&self) -> usize {
        crate::traits::words_for_bytes(self.estimator_memory_bytes())
    }

    fn supports_snapshot(&self) -> bool {
        true
    }

    fn snapshot(&self) -> Result<Vec<u8>, SnapshotError> {
        self.to_snapshot()
    }

    /// Restores state while keeping the receiver's kernel choice — the
    /// kernel is a memory schedule, not state, and both produce
    /// bit-identical results.
    fn restore(&mut self, snapshot: &[u8]) -> Result<(), SnapshotError> {
        let restored = Self::from_snapshot(snapshot)?.with_kernel(self.kernel);
        *self = restored;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::ReferenceBulkCounter;
    use std::collections::HashMap as StdHashMap;
    use tristream_graph::exact::{count_triangles, edge_neighborhood_sizes};
    use tristream_graph::{Adjacency, EdgeStream};

    fn k_n_edges(n: u64) -> Vec<Edge> {
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                edges.push(Edge::new(i, j));
            }
        }
        edges
    }

    /// Checks the paper's state invariants for every estimator against the
    /// exact stream: c = |N(r1)|, r2 ∈ N(r1), positions consistent, closer
    /// really closes the wedge after r2.
    fn assert_invariants(counter: &BulkTriangleCounter, stream: &EdgeStream) {
        let exact_c = edge_neighborhood_sizes(stream);
        let positions: StdHashMap<Edge, u64> =
            stream.iter_positioned().map(|(p, e)| (e, p)).collect();
        for (i, est) in counter.estimators().iter().enumerate() {
            let r1 = est.r1.expect("non-empty stream yields a level-1 edge");
            assert_eq!(
                positions[&r1.edge], r1.position,
                "estimator {i}: r1 position"
            );
            assert_eq!(
                est.c, exact_c[&r1.edge],
                "estimator {i}: c must equal |N(r1)| for r1 {:?}",
                r1.edge
            );
            if let Some(r2) = est.r2 {
                assert_eq!(
                    positions[&r2.edge], r2.position,
                    "estimator {i}: r2 position"
                );
                assert!(
                    r2.position > r1.position,
                    "estimator {i}: r2 arrives after r1"
                );
                assert!(
                    r2.edge.is_adjacent(&r1.edge),
                    "estimator {i}: r2 adjacent to r1"
                );
            } else {
                assert_eq!(est.c, 0, "estimator {i}: empty neighborhood iff no r2");
            }
            if let Some(closer) = est.closer {
                let r2 = est.r2.expect("closer requires r2");
                assert!(
                    closer.position > r2.position,
                    "estimator {i}: closer after r2"
                );
                assert!(
                    closer.edge.closes_wedge(&r1.edge, &r2.edge),
                    "estimator {i}: closer must close the wedge"
                );
            }
        }
    }

    #[test]
    #[should_panic]
    fn zero_estimators_panics() {
        let _ = BulkTriangleCounter::new(0, 1);
    }

    #[test]
    fn empty_batches_are_noops() {
        let mut c = BulkTriangleCounter::new(8, 1);
        c.process_batch(&[]);
        assert_eq!(c.edges_seen(), 0);
        assert_eq!(c.estimate(), 0.0);
    }

    #[test]
    fn invariants_hold_for_various_batch_sizes() {
        let stream = tristream_gen::planted_triangles(25, 60, 5);
        for &batch_size in &[1usize, 2, 3, 7, 16, 64, 1024] {
            let mut counter = BulkTriangleCounter::new(64, 99);
            counter.process_stream(stream.edges(), batch_size);
            assert_eq!(counter.edges_seen(), stream.len() as u64);
            assert_invariants(&counter, &stream);
        }
    }

    #[test]
    fn invariants_hold_on_hub_heavy_graphs() {
        let stream = tristream_gen::barabasi_albert_shuffled(400, 3, 12);
        let mut counter = BulkTriangleCounter::new(128, 3);
        counter.process_stream(stream.edges(), 37);
        assert_invariants(&counter, &stream);
    }

    #[test]
    fn counts_k8_accurately() {
        let edges = k_n_edges(8);
        let truth = 56.0;
        let mut c = BulkTriangleCounter::new(4_000, 21);
        c.process_stream(&edges, 5);
        let est = c.estimate();
        assert!((est - truth).abs() < 0.15 * truth, "estimate {est}");
    }

    #[test]
    fn batch_size_does_not_change_the_distribution() {
        // The estimate averaged over seeds must be unbiased regardless of the
        // batch size, and roughly equal across batch sizes.
        let stream = tristream_gen::planted_triangles(30, 90, 8);
        let truth = 30.0;
        let mut means = Vec::new();
        for &batch_size in &[1usize, 8, 97, 4096] {
            let mut sum = 0.0;
            let runs = 40u64;
            for seed in 0..runs {
                let mut c = BulkTriangleCounter::new(256, seed);
                c.process_stream(stream.edges(), batch_size);
                sum += c.estimate();
            }
            means.push(sum / runs as f64);
        }
        for (i, m) in means.iter().enumerate() {
            assert!(
                (m - truth).abs() < 0.25 * truth,
                "batch-size case {i}: mean {m}, truth {truth}"
            );
        }
    }

    #[test]
    fn bulk_matches_one_at_a_time_statistically() {
        // Same number of estimators, same stream: the two implementations
        // must produce estimates with the same expectation.
        use crate::counter::TriangleCounter;
        let stream = tristream_gen::holme_kim(300, 3, 0.6, 9);
        let truth = count_triangles(&Adjacency::from_stream(&stream)) as f64;
        let runs = 30u64;
        let (mut bulk_sum, mut single_sum) = (0.0, 0.0);
        for seed in 0..runs {
            let mut bulk = BulkTriangleCounter::new(512, seed);
            bulk.process_stream(stream.edges(), 128);
            bulk_sum += bulk.estimate();
            let mut single = TriangleCounter::new(512, seed);
            single.process_edges(stream.edges());
            single_sum += single.estimate();
        }
        let bulk_mean = bulk_sum / runs as f64;
        let single_mean = single_sum / runs as f64;
        assert!(
            (bulk_mean - truth).abs() < 0.3 * truth,
            "bulk mean {bulk_mean}, truth {truth}"
        );
        assert!(
            (single_mean - truth).abs() < 0.3 * truth,
            "single mean {single_mean}, truth {truth}"
        );
    }

    #[test]
    fn triangle_free_stream_estimates_zero() {
        let stream = tristream_gen::complete_bipartite(20, 20);
        let mut c = BulkTriangleCounter::new(512, 4);
        c.process_stream(stream.edges(), 64);
        assert_eq!(c.estimate(), 0.0);
        assert_eq!(c.estimators_with_triangle(), 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let edges = k_n_edges(10);
        let mut a = BulkTriangleCounter::new(200, 5);
        let mut b = BulkTriangleCounter::new(200, 5);
        a.process_stream(&edges, 7);
        b.process_stream(&edges, 7);
        assert_eq!(a.estimate(), b.estimate());
    }

    #[test]
    fn pooled_counter_is_bit_identical_to_the_reference() {
        // The strongest equivalence level: same seed, same batch boundaries
        // ⇒ the SoA pipeline and the retained pre-pool implementation agree
        // estimator by estimator, state field by state field, under both
        // level-1 strategies. (tests/pool_equivalence.rs extends this to
        // randomised streams and batch splits via proptest.)
        let stream = tristream_gen::holme_kim(250, 3, 0.5, 31);
        for strategy in [Level1Strategy::PerEstimator, Level1Strategy::GeometricSkip] {
            for &batch_size in &[1usize, 7, 64, 977] {
                let mut pooled = BulkTriangleCounter::new(192, 17).with_level1_strategy(strategy);
                let mut reference =
                    ReferenceBulkCounter::new(192, 17).with_level1_strategy(strategy);
                for chunk in stream.edges().chunks(batch_size) {
                    pooled.process_batch(chunk);
                    reference.process_batch(chunk);
                    assert_eq!(
                        pooled.estimators(),
                        reference.estimators(),
                        "{strategy:?}, w = {batch_size}: states diverged mid-stream"
                    );
                }
                assert_eq!(pooled.raw_estimates(), reference.raw_estimates());
                assert_eq!(
                    pooled.estimate().to_bits(),
                    reference.estimate().to_bits(),
                    "{strategy:?}, w = {batch_size}"
                );
            }
        }
    }

    #[test]
    fn geometric_skip_strategy_preserves_invariants_and_accuracy() {
        let stream = tristream_gen::planted_triangles(30, 80, 13);
        for &batch_size in &[3usize, 17, 256] {
            let mut counter =
                BulkTriangleCounter::new(96, 7).with_level1_strategy(Level1Strategy::GeometricSkip);
            assert_eq!(counter.level1_strategy(), Level1Strategy::GeometricSkip);
            counter.process_stream(stream.edges(), batch_size);
            assert_invariants(&counter, &stream);
        }
        // Accuracy: average over seeds stays near the truth.
        let truth = 30.0;
        let runs = 40u64;
        let mut sum = 0.0;
        for seed in 0..runs {
            let mut counter = BulkTriangleCounter::new(256, seed)
                .with_level1_strategy(Level1Strategy::GeometricSkip);
            counter.process_stream(stream.edges(), 64);
            sum += counter.estimate();
        }
        let mean_est = sum / runs as f64;
        assert!(
            (mean_est - truth).abs() < 0.25 * truth,
            "geometric-skip mean {mean_est}, truth {truth}"
        );
    }

    #[test]
    fn memory_accounting_scales_with_the_pool() {
        // Ten u64 columns per estimator plus three presence bits, measured
        // exactly; the per-batch scratch is excluded by the convention.
        let small = BulkTriangleCounter::new(10, 1);
        let large = BulkTriangleCounter::new(1_000, 1);
        assert_eq!(small.estimator_memory_bytes(), 10 * 10 * 8 + 3 * 8);
        assert_eq!(
            large.estimator_memory_bytes(),
            10 * 1_000 * 8 + 3 * (1_000usize.div_ceil(64)) * 8
        );
        assert_eq!(BulkTriangleCounter::words_per_estimator(), 10);
        // Processing a large batch must not change the accounted memory:
        // scratch is working memory, not sketch state.
        use crate::traits::TriangleEstimator;
        let mut counter = BulkTriangleCounter::new(64, 2);
        let before = counter.memory_words();
        counter.process_batch(tristream_gen::planted_triangles(50, 200, 3).edges());
        assert_eq!(counter.memory_words(), before);
    }

    #[test]
    fn median_of_means_aggregation_is_available() {
        let edges = k_n_edges(9);
        let mut c = BulkTriangleCounter::with_aggregation(
            2_000,
            3,
            Aggregation::MedianOfMeans { groups: 8 },
        );
        c.process_stream(&edges, 50);
        let truth = 84.0;
        assert!((c.estimate() - truth).abs() < 0.3 * truth);
        assert!((c.estimate_with(Aggregation::Mean) - truth).abs() < 0.3 * truth);
    }
}
