//! Streaming 4-clique counting — §5.1 of the paper.
//!
//! Extending neighborhood sampling to `K₄` needs care because the first two
//! edges of a 4-clique (in stream order) may or may not share a vertex. The
//! paper therefore splits the cliques by arrival pattern:
//!
//! * **Type I** — the first two edges share a vertex. Three levels of
//!   sampling (Algorithm 4): a uniform level-1 edge `r₁`, a uniform level-2
//!   edge `r₂ ∈ N(r₁)`, and a uniform level-3 edge `r₃ ∈ N(r₁, r₂)`, where
//!   `N(r₁, r₂)` contains the edges arriving after `r₂` that touch `r₁` or
//!   `r₂` but do not close the wedge `r₁r₂` (the wedge-closing edge is
//!   collected directly, it is part of the clique already determined by
//!   `r₁r₂`). A Type I clique `κ*` is held with probability
//!   `1/(m·c(f₁)·c(f₁,f₂))` (Lemma 5.1), so `X = m·c₁·c₂` on a held clique
//!   is an unbiased estimate of the number of Type I cliques (Lemma 5.3).
//! * **Type II** — the first two edges are vertex-disjoint. Two independent
//!   uniform level-1 edges; a Type II clique is held iff they are exactly
//!   its first two edges, probability `1/m²` (Lemma 5.2), so `Y = m²` on a
//!   held clique is unbiased for the number of Type II cliques (Lemma 5.4).
//!
//! [`FourCliqueCounter`] runs `r` estimators of each type and reports the
//! sum of the two pools' averages (Theorem 5.5).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tristream_graph::{Edge, VertexId};
use tristream_sample::mean;

/// Collects the vertex set spanned by up to three sampled edges.
fn span(edges: &[Edge]) -> Vec<VertexId> {
    let mut v: Vec<VertexId> = edges.iter().flat_map(|e| [e.u(), e.v()]).collect();
    v.sort_unstable();
    v.dedup();
    v
}

/// Whether `collected` contains every edge of the complete graph on
/// `vertices` (which must have exactly four elements for a 4-clique).
fn covers_k4(vertices: &[VertexId], collected: &[Edge]) -> bool {
    if vertices.len() != 4 {
        return false;
    }
    for (i, &a) in vertices.iter().enumerate() {
        for &b in &vertices[i + 1..] {
            let needed = Edge::new(a, b);
            if !collected.contains(&needed) {
                return false;
            }
        }
    }
    true
}

/// One Type I estimator (Algorithm 4).
#[derive(Debug, Clone, Default)]
struct TypeOneEstimator {
    r1: Option<(Edge, u64)>,
    r2: Option<(Edge, u64)>,
    r3: Option<(Edge, u64)>,
    /// `c₁ = |N(r₁)|`.
    c1: u64,
    /// `c₂ = |N(r₁, r₂)|`.
    c2: u64,
    /// The edge closing the wedge `r₁r₂` (the third edge on the three
    /// vertices spanned by `r₁, r₂`), if it has arrived after `r₂`.
    wedge_closer: Option<Edge>,
    /// Clique edges incident to the fourth vertex collected since `r₃` was
    /// set (at most three in a simple graph: `r₃` itself plus the two other
    /// edges joining the fourth vertex to the wedge).
    d_edges: Vec<Edge>,
}

impl TypeOneEstimator {
    fn reset_from_level1(&mut self, edge: Edge, position: u64) {
        self.r1 = Some((edge, position));
        self.r2 = None;
        self.r3 = None;
        self.c1 = 0;
        self.c2 = 0;
        self.wedge_closer = None;
        self.d_edges.clear();
    }

    fn reset_from_level2(&mut self, edge: Edge, position: u64) {
        self.r2 = Some((edge, position));
        self.r3 = None;
        self.c2 = 0;
        self.wedge_closer = None;
        self.d_edges.clear();
    }

    fn reset_from_level3(&mut self, edge: Edge, position: u64) {
        self.r3 = Some((edge, position));
        self.d_edges.clear();
        self.d_edges.push(edge);
    }

    fn process_edge(&mut self, rng: &mut SmallRng, edge: Edge, position: u64) {
        // Level-1 reservoir over the whole stream.
        if position == 1 || rng.gen_range(0..position) == 0 {
            self.reset_from_level1(edge, position);
            return;
        }
        let (r1, _) = match self.r1 {
            Some(r1) => r1,
            None => return,
        };
        let adjacent_to_r1 = edge.is_adjacent(&(r1));
        // Level-2 reservoir over N(r1).
        if adjacent_to_r1 {
            self.c1 += 1;
            if rng.gen_range(0..self.c1) == 0 {
                self.reset_from_level2(edge, position);
                return;
            }
        }
        let (r2, _) = match self.r2 {
            Some(r2) => r2,
            None => return,
        };
        // The wedge-closing edge (the triangle on the three vertices spanned
        // by r1, r2) is collected directly and excluded from N(r1, r2).
        if edge.closes_wedge(&r1, &r2) {
            if self.wedge_closer.is_none() {
                self.wedge_closer = Some(edge);
            }
            return;
        }
        // Level-3 reservoir over N(r1, r2): edges after r2 adjacent to r1 or
        // r2 (the wedge-closer was handled above).
        let adjacent_to_r2 = edge.is_adjacent(&r2);
        if adjacent_to_r1 || adjacent_to_r2 {
            self.c2 += 1;
            if rng.gen_range(0..self.c2) == 0 {
                self.reset_from_level3(edge, position);
                return;
            }
        }
        // Not sampled — but it may still be one of the remaining clique
        // edges: collect it if both endpoints lie in the current span.
        if let Some((r3, _)) = self.r3 {
            let current_span = span(&[r1, r2, r3]);
            if current_span.contains(&edge.u()) && current_span.contains(&edge.v()) {
                self.d_edges.push(edge);
            }
        }
    }

    /// Lemma 5.3: `X = m·c₁·c₂` if the held edges form a 4-clique, else 0.
    fn estimate(&self, m: u64) -> f64 {
        let (r1, r2, r3) = match (self.r1, self.r2, self.r3) {
            (Some(a), Some(b), Some(c)) => (a.0, b.0, c.0),
            _ => return 0.0,
        };
        let closer = match self.wedge_closer {
            Some(c) => c,
            None => return 0.0,
        };
        let vertices = span(&[r1, r2, r3]);
        let mut collected = vec![r1, r2, closer];
        collected.extend(self.d_edges.iter().copied());
        if covers_k4(&vertices, &collected) {
            m as f64 * self.c1 as f64 * self.c2 as f64
        } else {
            0.0
        }
    }
}

/// One Type II estimator: two independent uniform edges plus collection of
/// the cross edges once both are fixed.
#[derive(Debug, Clone, Default)]
struct TypeTwoEstimator {
    r1: Option<(Edge, u64)>,
    r2: Option<(Edge, u64)>,
    /// Edges collected since the later of r1/r2 was set whose endpoints both
    /// lie in the span of `r1 ∪ r2`.
    collected: Vec<Edge>,
}

impl TypeTwoEstimator {
    fn reset_collection(&mut self) {
        self.collected.clear();
    }

    fn process_edge(&mut self, rng: &mut SmallRng, edge: Edge, position: u64) {
        // Two independent reservoirs over the whole stream.
        let take1 = position == 1 || rng.gen_range(0..position) == 0;
        let take2 = position == 1 || rng.gen_range(0..position) == 0;
        if take1 {
            self.r1 = Some((edge, position));
            self.reset_collection();
        }
        if take2 {
            self.r2 = Some((edge, position));
            self.reset_collection();
        }
        if take1 || take2 {
            return;
        }
        // Collect candidate clique edges once both samples are fixed and
        // vertex-disjoint (Type II requires disjointness) with r1 earlier.
        let ((e1, p1), (e2, p2)) = match (self.r1, self.r2) {
            (Some(a), Some(b)) => (a, b),
            _ => return,
        };
        if p1 >= p2 || e1.shared_vertex(&e2).is_some() || e1 == e2 {
            return;
        }
        let current_span = span(&[e1, e2]);
        if current_span.contains(&edge.u()) && current_span.contains(&edge.v()) {
            self.collected.push(edge);
        }
    }

    /// Lemma 5.4: `Y = m²` if the held edges form a 4-clique, else 0.
    fn estimate(&self, m: u64) -> f64 {
        let ((e1, p1), (e2, p2)) = match (self.r1, self.r2) {
            (Some(a), Some(b)) => (a, b),
            _ => return 0.0,
        };
        if p1 >= p2 || e1.shared_vertex(&e2).is_some() || e1 == e2 {
            return 0.0;
        }
        let vertices = span(&[e1, e2]);
        let mut collected = vec![e1, e2];
        collected.extend(self.collected.iter().copied());
        if covers_k4(&vertices, &collected) {
            (m as f64) * (m as f64)
        } else {
            0.0
        }
    }
}

/// Streaming 4-clique counter: `r` Type I estimators plus `r` Type II
/// estimators; the estimate is the sum of the two pools' means
/// (Theorem 5.5).
#[derive(Debug, Clone)]
pub struct FourCliqueCounter {
    type1: Vec<TypeOneEstimator>,
    type2: Vec<TypeTwoEstimator>,
    edges_seen: u64,
    rng: SmallRng,
}

impl FourCliqueCounter {
    /// Creates a counter with `r` estimators of each type.
    ///
    /// # Panics
    ///
    /// Panics if `r` is zero.
    pub fn new(r: usize, seed: u64) -> Self {
        assert!(r > 0, "at least one estimator is required");
        Self {
            type1: vec![TypeOneEstimator::default(); r],
            type2: vec![TypeTwoEstimator::default(); r],
            edges_seen: 0,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Number of estimators per type.
    pub fn num_estimators(&self) -> usize {
        self.type1.len()
    }

    /// Number of edges observed so far.
    pub fn edges_seen(&self) -> u64 {
        self.edges_seen
    }

    /// Processes the next edge of the stream through every estimator.
    pub fn process_edge(&mut self, edge: Edge) {
        self.edges_seen += 1;
        let position = self.edges_seen;
        for est in &mut self.type1 {
            est.process_edge(&mut self.rng, edge, position);
        }
        for est in &mut self.type2 {
            est.process_edge(&mut self.rng, edge, position);
        }
    }

    /// Processes a whole slice of edges in order.
    pub fn process_edges(&mut self, edges: &[Edge]) {
        for &e in edges {
            self.process_edge(e);
        }
    }

    /// The estimated number of Type I 4-cliques (first two edges adjacent).
    pub fn type1_estimate(&self) -> f64 {
        let m = self.edges_seen;
        mean(&self.type1.iter().map(|e| e.estimate(m)).collect::<Vec<_>>())
    }

    /// The estimated number of Type II 4-cliques (first two edges disjoint).
    pub fn type2_estimate(&self) -> f64 {
        let m = self.edges_seen;
        mean(&self.type2.iter().map(|e| e.estimate(m)).collect::<Vec<_>>())
    }

    /// The estimated total number of 4-cliques: Type I + Type II.
    pub fn estimate(&self) -> f64 {
        self.type1_estimate() + self.type2_estimate()
    }

    /// Number of estimators (of either type) currently holding a complete
    /// 4-clique.
    pub fn estimators_with_clique(&self) -> usize {
        let m = self.edges_seen;
        self.type1.iter().filter(|e| e.estimate(m) > 0.0).count()
            + self.type2.iter().filter(|e| e.estimate(m) > 0.0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tristream_graph::exact::count_four_cliques;
    use tristream_graph::{Adjacency, EdgeStream, StreamOrder};

    fn k_n_edges(n: u64) -> Vec<Edge> {
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                edges.push(Edge::new(i, j));
            }
        }
        edges
    }

    #[test]
    #[should_panic]
    fn zero_estimators_panics() {
        let _ = FourCliqueCounter::new(0, 1);
    }

    #[test]
    fn empty_and_clique_free_streams_estimate_zero() {
        let c = FourCliqueCounter::new(16, 1);
        assert_eq!(c.estimate(), 0.0);

        let mut c = FourCliqueCounter::new(256, 2);
        // A triangle has no 4-clique.
        c.process_edges(&[
            Edge::new(1u64, 2u64),
            Edge::new(2u64, 3u64),
            Edge::new(1u64, 3u64),
        ]);
        assert_eq!(c.estimate(), 0.0);
        assert_eq!(c.estimators_with_clique(), 0);
    }

    #[test]
    fn single_k4_natural_order_is_detected() {
        // K4 in lexicographic order: the first two edges (0,1), (0,2) share
        // vertex 0, so this is a Type I arrival pattern.
        let edges = k_n_edges(4);
        let truth = 1.0;
        let runs = 400u64;
        let mut sum = 0.0;
        for seed in 0..runs {
            let mut c = FourCliqueCounter::new(64, seed);
            c.process_edges(&edges);
            sum += c.estimate();
        }
        let mean_est = sum / runs as f64;
        assert!(
            (mean_est - truth).abs() < 0.25 * truth,
            "mean estimate {mean_est}, truth {truth}"
        );
    }

    #[test]
    fn type_two_arrival_pattern_is_detected() {
        // Order the K4's edges so the first two are vertex-disjoint:
        // (0,1), (2,3), then the four cross edges.
        let edges = vec![
            Edge::new(0u64, 1u64),
            Edge::new(2u64, 3u64),
            Edge::new(0u64, 2u64),
            Edge::new(0u64, 3u64),
            Edge::new(1u64, 2u64),
            Edge::new(1u64, 3u64),
        ];
        let runs = 400u64;
        let (mut sum, mut type2_sum) = (0.0, 0.0);
        for seed in 0..runs {
            let mut c = FourCliqueCounter::new(64, seed);
            c.process_edges(&edges);
            sum += c.estimate();
            type2_sum += c.type2_estimate();
        }
        let mean_est = sum / runs as f64;
        assert!((mean_est - 1.0).abs() < 0.3, "mean estimate {mean_est}");
        assert!(
            type2_sum > 0.0,
            "the Type II pool must contribute for this ordering"
        );
    }

    #[test]
    fn unbiased_on_k6_across_orderings() {
        // K6 has C(6,4) = 15 4-cliques; check the estimator mean over many
        // seeds for a couple of different stream orders.
        let base = EdgeStream::new(k_n_edges(6));
        for order in [StreamOrder::Natural, StreamOrder::Shuffled(3)] {
            let stream = base.reordered(order);
            let truth = count_four_cliques(&Adjacency::from_stream(&stream)) as f64;
            assert_eq!(truth, 15.0);
            let runs = 250u64;
            let mut sum = 0.0;
            for seed in 0..runs {
                let mut c = FourCliqueCounter::new(128, seed);
                c.process_edges(stream.edges());
                sum += c.estimate();
            }
            let mean_est = sum / runs as f64;
            assert!(
                (mean_est - truth).abs() < 0.3 * truth,
                "order {order:?}: mean estimate {mean_est}, truth {truth}"
            );
        }
    }

    #[test]
    fn two_overlapping_k4s_with_noise() {
        // K4 on {0,1,2,3} and K4 on {2,3,4,5} sharing an edge, plus pendant
        // noise; τ₄ = 2.
        let mut edges = vec![
            Edge::new(0u64, 1u64),
            Edge::new(0u64, 2u64),
            Edge::new(0u64, 3u64),
            Edge::new(1u64, 2u64),
            Edge::new(1u64, 3u64),
            Edge::new(2u64, 3u64),
            Edge::new(2u64, 4u64),
            Edge::new(2u64, 5u64),
            Edge::new(3u64, 4u64),
            Edge::new(3u64, 5u64),
            Edge::new(4u64, 5u64),
            Edge::new(5u64, 9u64),
            Edge::new(9u64, 10u64),
        ];
        let stream = EdgeStream::new(std::mem::take(&mut edges));
        let truth = count_four_cliques(&Adjacency::from_stream(&stream)) as f64;
        assert_eq!(truth, 2.0);
        let runs = 300u64;
        let mut sum = 0.0;
        for seed in 0..runs {
            let mut c = FourCliqueCounter::new(96, seed);
            c.process_edges(stream.edges());
            sum += c.estimate();
        }
        let mean_est = sum / runs as f64;
        assert!(
            (mean_est - truth).abs() < 0.35 * truth,
            "mean estimate {mean_est}, truth {truth}"
        );
    }

    #[test]
    fn larger_pool_is_accurate_in_a_single_run() {
        let edges = k_n_edges(7); // C(7,4) = 35 4-cliques
        let mut c = FourCliqueCounter::new(20_000, 9);
        c.process_edges(&edges);
        let est = c.estimate();
        assert!((est - 35.0).abs() < 0.3 * 35.0, "estimate {est}");
        assert!(c.estimators_with_clique() > 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let edges = k_n_edges(5);
        let mut a = FourCliqueCounter::new(200, 4);
        let mut b = FourCliqueCounter::new(200, 4);
        a.process_edges(&edges);
        b.process_edges(&edges);
        assert_eq!(a.estimate(), b.estimate());
    }
}
