//! The paper's sufficient-space formulas, exposed so applications (and the
//! experiment harness) can size their estimator pools and so Figure 5's
//! theoretical-bound curve can be regenerated.

/// The paper's shorthand `s(ε, δ) = (1/ε²)·ln(1/δ)`.
pub fn s_eps_delta(epsilon: f64, delta: f64) -> f64 {
    assert!(epsilon > 0.0 && epsilon <= 1.0, "epsilon must be in (0, 1]");
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
    (1.0 / (epsilon * epsilon)) * (1.0 / delta).ln()
}

/// Theorem 3.3: number of estimators sufficient for an (ε, δ)-approximation
/// of the triangle count with plain averaging:
/// `r ≥ (6/ε²)·(mΔ/τ)·ln(2/δ)`.
///
/// Returns `f64::INFINITY` when the graph has no triangles (no finite number
/// of estimators can achieve a relative-error guarantee).
pub fn sufficient_estimators_mean(
    epsilon: f64,
    delta: f64,
    edges: u64,
    max_degree: u64,
    triangles: u64,
) -> f64 {
    assert!(epsilon > 0.0 && epsilon <= 1.0, "epsilon must be in (0, 1]");
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
    if triangles == 0 {
        return f64::INFINITY;
    }
    (6.0 / (epsilon * epsilon))
        * (edges as f64 * max_degree as f64 / triangles as f64)
        * (2.0 / delta).ln()
}

/// Theorem 3.4: number of estimators sufficient with the tangle-coefficient
/// (median-of-means) aggregation: `r ≥ (48/ε²)·(m·γ/τ)·ln(1/δ)`.
pub fn sufficient_estimators_tangle(
    epsilon: f64,
    delta: f64,
    edges: u64,
    tangle_coefficient: f64,
    triangles: u64,
) -> f64 {
    assert!(epsilon > 0.0 && epsilon <= 1.0, "epsilon must be in (0, 1]");
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
    if triangles == 0 {
        return f64::INFINITY;
    }
    (48.0 / (epsilon * epsilon))
        * (edges as f64 * tangle_coefficient / triangles as f64)
        * (1.0 / delta).ln()
}

/// Theorem 3.3 inverted: the relative-error guarantee ε implied by a given
/// number of estimators `r` (with failure probability `delta`). This is the
/// curve plotted in Figure 5 (right) as the "bound" series.
///
/// Returns `f64::INFINITY` when no guarantee follows (τ = 0 or r = 0).
pub fn error_bound_for_estimators(
    r: u64,
    delta: f64,
    edges: u64,
    max_degree: u64,
    triangles: u64,
) -> f64 {
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
    if triangles == 0 || r == 0 {
        return f64::INFINITY;
    }
    let eps_sq =
        6.0 * (edges as f64 * max_degree as f64 / triangles as f64) * (2.0 / delta).ln() / r as f64;
    eps_sq.sqrt()
}

/// Theorem 3.8: number of `unifTri` copies sufficient to output `k` uniform
/// triangles with probability ≥ 1 − δ: `r ≥ 4·m·k·Δ·ln(e/δ)/τ`.
pub fn sufficient_sampler_copies(
    k: u64,
    delta: f64,
    edges: u64,
    max_degree: u64,
    triangles: u64,
) -> f64 {
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
    if triangles == 0 {
        return f64::INFINITY;
    }
    4.0 * edges as f64 * k as f64 * max_degree as f64 * (std::f64::consts::E / delta).ln()
        / triangles as f64
}

/// Theorem 5.5: estimators sufficient for (ε, δ)-approximate 4-clique
/// counting, up to the constant K: `r ≥ K·s(ε,δ)·η/τ₄` where
/// `η = max(mΔ², m²)`. The constant is reported as 1 here; callers compare
/// *shapes* rather than absolute values.
pub fn sufficient_estimators_four_clique(
    epsilon: f64,
    delta: f64,
    edges: u64,
    max_degree: u64,
    four_cliques: u64,
) -> f64 {
    if four_cliques == 0 {
        return f64::INFINITY;
    }
    let m = edges as f64;
    let d = max_degree as f64;
    let eta = (m * d * d).max(m * m);
    s_eps_delta(epsilon, delta) * eta / four_cliques as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s_eps_delta_matches_formula() {
        let v = s_eps_delta(0.1, 0.05);
        assert!((v - 100.0 * (20.0f64).ln()).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn s_eps_delta_rejects_zero_epsilon() {
        let _ = s_eps_delta(0.0, 0.1);
    }

    #[test]
    fn mean_bound_scales_as_expected() {
        // Paper example (§4.3): Orkut with ε = 0.0355 needs ≥ 4.89M
        // estimators by the formula (using δ = 1/5 as in Figure 5).
        let r = sufficient_estimators_mean(0.0355, 0.2, 117_200_000, 33_313, 633_319_568);
        assert!(r > 4.0e6, "r = {r}");
        // Halving epsilon quadruples the requirement.
        let r2 = sufficient_estimators_mean(0.1, 0.2, 1_000, 10, 100);
        let r3 = sufficient_estimators_mean(0.05, 0.2, 1_000, 10, 100);
        assert!((r3 / r2 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn tangle_bound_is_smaller_when_gamma_is_small() {
        // γ ≤ 2Δ always; when γ ≪ Δ the tangle bound (even with its larger
        // constant) eventually wins.
        let mean = sufficient_estimators_mean(0.1, 0.1, 1_000_000, 10_000, 1_000_000);
        let tangle = sufficient_estimators_tangle(0.1, 0.1, 1_000_000, 20.0, 1_000_000);
        assert!(tangle < mean);
    }

    #[test]
    fn zero_triangles_give_infinite_requirements() {
        assert!(sufficient_estimators_mean(0.1, 0.1, 100, 10, 0).is_infinite());
        assert!(sufficient_estimators_tangle(0.1, 0.1, 100, 5.0, 0).is_infinite());
        assert!(sufficient_sampler_copies(1, 0.1, 100, 10, 0).is_infinite());
        assert!(sufficient_estimators_four_clique(0.1, 0.1, 100, 10, 0).is_infinite());
        assert!(error_bound_for_estimators(100, 0.1, 100, 10, 0).is_infinite());
    }

    #[test]
    fn error_bound_is_the_inverse_of_the_mean_bound() {
        let (m, d, tau, delta) = (10_000u64, 50u64, 2_000u64, 0.2);
        let eps = 0.08;
        let r = sufficient_estimators_mean(eps, delta, m, d, tau).ceil() as u64;
        let implied = error_bound_for_estimators(r, delta, m, d, tau);
        assert!(
            implied <= eps * 1.01,
            "implied {implied} vs requested {eps}"
        );
        // And fewer estimators imply a weaker (larger) bound.
        assert!(error_bound_for_estimators(r / 4, delta, m, d, tau) > implied);
    }

    #[test]
    fn sampler_copies_grow_linearly_in_k() {
        let one = sufficient_sampler_copies(1, 0.1, 10_000, 100, 5_000);
        let five = sufficient_sampler_copies(5, 0.1, 10_000, 100, 5_000);
        assert!((five / one - 5.0).abs() < 1e-9);
    }

    #[test]
    fn four_clique_bound_uses_the_eta_maximum() {
        // When Δ² > m the mΔ² term dominates; when m > Δ² the m² term does.
        let dense_hub = sufficient_estimators_four_clique(0.1, 0.1, 1_000, 1_000, 10);
        let flat = sufficient_estimators_four_clique(0.1, 0.1, 1_000_000, 10, 10);
        assert!(dense_hub > 0.0 && flat > 0.0);
        assert!(
            flat > dense_hub,
            "m² term should dominate for the flat graph"
        );
    }
}
