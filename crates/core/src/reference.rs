//! The pre-pool bulk counter, kept verbatim as a reference implementation.
//!
//! [`ReferenceBulkCounter`] is the array-of-structs, std-`HashMap`,
//! allocate-per-batch implementation of Theorem 3.5 that
//! [`crate::bulk::BulkTriangleCounter`] replaced when the hot path moved to
//! the struct-of-arrays [`crate::pool::EstimatorPool`]. It exists for two
//! consumers only:
//!
//! * **Tests** — the pooled counter consumes the RNG stream in exactly the
//!   order this implementation does, so for any seed and any batch
//!   boundaries the two must be *bit-identical*, estimator by estimator.
//!   `tests/pool_equivalence.rs` pins that, which is a strictly stronger
//!   guarantee than the distributional identity Theorem 3.5 requires.
//! * **Benches** — the `hot-path` workload family in `tristream-bench`
//!   races this counter against the pooled one over the batch-size sweep
//!   and records both rows in `BENCH.json`, so the speedup stays a
//!   measured, machine-readable claim instead of a one-off number.
//!
//! It is **not** a production path: nothing outside tests and benches
//! should construct one. The algorithmic comments live in [`crate::bulk`];
//! this file intentionally preserves the old control flow (including its
//! per-batch `HashMap` allocations) without restating the rationale.

use crate::bulk::Level1Strategy;
use crate::counter::Aggregation;
use crate::estimator::{EstimatorState, PositionedEdge};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
// analyze: allow(D1, reason = "the oracle deliberately uses std HashMap to stay structurally independent of the FastMap production path it validates; its tables are only probed, never iterated, so estimates do not depend on layout")
use std::collections::HashMap;
use tristream_graph::{Edge, VertexId};
use tristream_sample::{mean, GeometricSkip};

/// The pre-pool bulk triangle counter (see the [module docs](self)).
#[derive(Debug, Clone)]
pub struct ReferenceBulkCounter {
    estimators: Vec<EstimatorState>,
    edges_seen: u64,
    rng: SmallRng,
    level1_strategy: Level1Strategy,
}

impl ReferenceBulkCounter {
    /// Creates a reference counter with `r` estimators and plain-mean
    /// aggregation.
    ///
    /// # Panics
    ///
    /// Panics if `r` is zero.
    pub fn new(r: usize, seed: u64) -> Self {
        assert!(r > 0, "at least one estimator is required");
        Self {
            estimators: vec![EstimatorState::new(); r],
            edges_seen: 0,
            rng: SmallRng::seed_from_u64(seed),
            level1_strategy: Level1Strategy::default(),
        }
    }

    /// Selects the level-1 resampling strategy, as the pooled counter does.
    pub fn with_level1_strategy(mut self, strategy: Level1Strategy) -> Self {
        self.level1_strategy = strategy;
        self
    }

    /// Number of estimators `r`.
    pub fn num_estimators(&self) -> usize {
        self.estimators.len()
    }

    /// Number of edges observed so far (`m`).
    pub fn edges_seen(&self) -> u64 {
        self.edges_seen
    }

    /// Read-only view of the estimator states.
    pub fn estimators(&self) -> &[EstimatorState] {
        &self.estimators
    }

    /// Processes a whole stream in batches of `batch_size` edges.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    pub fn process_stream(&mut self, edges: &[Edge], batch_size: usize) {
        assert!(batch_size > 0, "batch size must be positive");
        for chunk in edges.chunks(batch_size) {
            self.process_batch(chunk);
        }
    }

    /// Ingests one batch — the original implementation, preserved verbatim
    /// (per-batch `HashMap` and `Vec` allocations included).
    pub fn process_batch(&mut self, batch: &[Edge]) {
        let w = batch.len();
        if w == 0 {
            return;
        }
        let m = self.edges_seen;
        let r = self.estimators.len();

        // ---- Step 1: level-1 reservoir over (old stream) ++ (batch). ------
        let mut replaced_at: Vec<Option<usize>> = vec![None; r];
        match self.level1_strategy {
            Level1Strategy::PerEstimator => {
                for (idx, est) in self.estimators.iter_mut().enumerate() {
                    let total = m + w as u64;
                    let draw = self.rng.gen_range(0..total);
                    if draw >= m {
                        let k = (draw - m) as usize;
                        est.r1 = Some(PositionedEdge::new(batch[k], m + k as u64 + 1));
                        est.r2 = None;
                        est.c = 0;
                        est.closer = None;
                        replaced_at[idx] = Some(k);
                    }
                }
            }
            Level1Strategy::GeometricSkip => {
                let p = w as f64 / (m + w as u64) as f64;
                let mut skip = GeometricSkip::new(p);
                for idx in skip.successes_up_to(&mut self.rng, r as u64) {
                    let idx = (idx - 1) as usize;
                    let k = self.rng.gen_range(0..w);
                    let est = &mut self.estimators[idx];
                    est.r1 = Some(PositionedEdge::new(batch[k], m + k as u64 + 1));
                    est.r2 = None;
                    est.c = 0;
                    est.closer = None;
                    replaced_at[idx] = Some(k);
                }
            }
        }

        // ---- Step 2a: first edgeIter pass — record β values and degB. -----
        let mut level1_at_index: Vec<Vec<u32>> = vec![Vec::new(); w];
        for (idx, &at) in replaced_at.iter().enumerate() {
            if let Some(k) = at {
                level1_at_index[k].push(idx as u32);
            }
        }
        let mut beta: Vec<(u64, u64)> = vec![(0, 0); r];
        // analyze: allow(D1, reason = "oracle-only std table, probed by key and never iterated; see the import-site allow")
        let mut deg: HashMap<VertexId, u64> = HashMap::with_capacity(2 * w);
        for (i, e) in batch.iter().enumerate() {
            *deg.entry(e.u()).or_insert(0) += 1;
            *deg.entry(e.v()).or_insert(0) += 1;
            for &est_idx in &level1_at_index[i] {
                #[allow(clippy::expect_used)]
                let r1_edge = self.estimators[est_idx as usize]
                    .r1
                    // analyze: allow(P1, reason = "oracle invariant: step 1 just stored r1 for every index it recorded in replaced_at; a panic here is a bug in the specification itself")
                    .expect("estimator replaced this batch has a level-1 edge")
                    .edge;
                debug_assert_eq!(r1_edge, *e);
                beta[est_idx as usize] = (deg[&r1_edge.u()], deg[&r1_edge.v()]);
            }
        }
        let final_deg = deg;

        // ---- Step 2b: one randInt per estimator; subscribe to EVENT_B. ----
        // analyze: allow(D1, reason = "oracle-only std table, probed by key and never iterated; see the import-site allow")
        let mut subscriptions: HashMap<(VertexId, u64), Vec<u32>> = HashMap::new();
        for (idx, est) in self.estimators.iter_mut().enumerate() {
            let r1 = match est.r1 {
                Some(r1) => r1,
                None => continue,
            };
            let (x, y) = r1.edge.endpoints();
            let (beta_x, beta_y) = beta[idx];
            let deg_x = final_deg.get(&x).copied().unwrap_or(0);
            let deg_y = final_deg.get(&y).copied().unwrap_or(0);
            let a = deg_x - beta_x;
            let b = deg_y - beta_y;
            let c_minus = est.c;
            let c_plus = a + b;
            if c_plus == 0 {
                continue;
            }
            let total = c_minus + c_plus;
            let phi = self.rng.gen_range(1..=total);
            est.c = total;
            if phi <= c_minus {
                continue;
            }
            est.r2 = None;
            est.closer = None;
            let (vertex, target_degree) = if phi <= c_minus + a {
                (x, beta_x + (phi - c_minus))
            } else {
                (y, beta_y + (phi - c_minus - a))
            };
            subscriptions
                .entry((vertex, target_degree))
                .or_default()
                .push(idx as u32);
        }

        // ---- Step 2c: second edgeIter pass — resolve events to edges. -----
        if !subscriptions.is_empty() {
            // analyze: allow(D1, reason = "oracle-only std table, probed by key and never iterated; see the import-site allow")
            let mut deg: HashMap<VertexId, u64> = HashMap::with_capacity(2 * w);
            for (i, e) in batch.iter().enumerate() {
                let position = m + i as u64 + 1;
                for vertex in [e.u(), e.v()] {
                    let d = {
                        let entry = deg.entry(vertex).or_insert(0);
                        *entry += 1;
                        *entry
                    };
                    if let Some(list) = subscriptions.remove(&(vertex, d)) {
                        for est_idx in list {
                            let est = &mut self.estimators[est_idx as usize];
                            est.r2 = Some(PositionedEdge::new(*e, position));
                            est.closer = None;
                        }
                    }
                }
                if subscriptions.is_empty() {
                    break;
                }
            }
            debug_assert!(
                subscriptions.is_empty(),
                "every EVENT_B subscription must resolve within the batch"
            );
        }

        // ---- Step 3: find wedge-closing edges within the batch. -----------
        // analyze: allow(D1, reason = "oracle-only std table, probed by key and never iterated; see the import-site allow")
        let mut waiting: HashMap<Edge, Vec<u32>> = HashMap::new();
        for (idx, est) in self.estimators.iter().enumerate() {
            if est.closer.is_some() {
                continue;
            }
            let (r1, r2) = match (est.r1, est.r2) {
                (Some(r1), Some(r2)) => (r1, r2),
                _ => continue,
            };
            if let Some(shared) = r1.edge.shared_vertex(&r2.edge) {
                #[allow(clippy::expect_used)]
                let p = r1
                    .edge
                    .other_endpoint(shared)
                    // analyze: allow(P1, reason = "infallible: Edge::new rejects self-loops, so a shared vertex always has a distinct partner")
                    .expect("edge has two endpoints");
                #[allow(clippy::expect_used)]
                let q = r2
                    .edge
                    .other_endpoint(shared)
                    // analyze: allow(P1, reason = "infallible: Edge::new rejects self-loops, so a shared vertex always has a distinct partner")
                    .expect("edge has two endpoints");
                if p != q {
                    waiting.entry(Edge::new(p, q)).or_default().push(idx as u32);
                }
            }
        }
        if !waiting.is_empty() {
            for (i, e) in batch.iter().enumerate() {
                let position = m + i as u64 + 1;
                if let Some(list) = waiting.get(e) {
                    for &est_idx in list {
                        let est = &mut self.estimators[est_idx as usize];
                        #[allow(clippy::expect_used)]
                        // analyze: allow(P1, reason = "oracle invariant: step 3 only enrolled estimators whose r2 was Some; a panic here is a bug in the specification itself")
                        let r2 = est.r2.expect("waiting estimators have a level-2 edge");
                        if est.closer.is_none() && position > r2.position {
                            est.closer = Some(PositionedEdge::new(*e, position));
                        }
                    }
                }
            }
        }

        self.edges_seen += w as u64;
    }

    /// Per-estimator unbiased triangle estimates (Lemma 3.2).
    pub fn raw_estimates(&self) -> Vec<f64> {
        self.estimators
            .iter()
            .map(|e| e.triangle_estimate(self.edges_seen))
            .collect()
    }

    /// The plain-mean triangle-count estimate.
    pub fn estimate(&self) -> f64 {
        mean(&self.raw_estimates())
    }

    /// The estimate under an explicit aggregation (parity with the pooled
    /// counter's ablation hook).
    pub fn estimate_with(&self, aggregation: Aggregation) -> f64 {
        let raw = self.raw_estimates();
        match aggregation {
            Aggregation::Mean => mean(&raw),
            Aggregation::MedianOfMeans { groups } => {
                tristream_sample::median_of_means(&raw, groups)
            }
        }
    }
}

impl crate::traits::TriangleEstimator for ReferenceBulkCounter {
    fn process_edge(&mut self, edge: Edge) {
        self.process_batch(&[edge]);
    }

    fn process_edges(&mut self, edges: &[Edge]) {
        self.process_batch(edges);
    }

    fn estimate(&self) -> f64 {
        ReferenceBulkCounter::estimate(self)
    }

    fn edges_seen(&self) -> u64 {
        ReferenceBulkCounter::edges_seen(self)
    }

    /// `r` scalar [`EstimatorState`]s, as the old counter reported.
    fn memory_words(&self) -> usize {
        crate::traits::words_for_bytes(
            self.estimators.len() * std::mem::size_of::<EstimatorState>(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic]
    fn zero_estimators_panics() {
        let _ = ReferenceBulkCounter::new(0, 1);
    }

    #[test]
    fn reference_counts_a_clique_accurately() {
        let mut edges = Vec::new();
        for i in 0..8u64 {
            for j in (i + 1)..8 {
                edges.push(Edge::new(i, j));
            }
        }
        let truth = 56.0;
        let mut c = ReferenceBulkCounter::new(4_000, 21);
        c.process_stream(&edges, 5);
        let est = c.estimate();
        assert!((est - truth).abs() < 0.15 * truth, "estimate {est}");
        assert_eq!(c.edges_seen(), edges.len() as u64);
        assert_eq!(c.num_estimators(), 4_000);
        assert!(c.estimators().iter().any(|e| e.has_triangle()));
    }

    #[test]
    fn reference_is_deterministic_per_seed() {
        let stream = tristream_gen::planted_triangles(20, 50, 3);
        let run = || {
            let mut c = ReferenceBulkCounter::new(128, 9)
                .with_level1_strategy(Level1Strategy::GeometricSkip);
            c.process_stream(stream.edges(), 17);
            c.raw_estimates()
        };
        assert_eq!(run(), run());
    }
}
