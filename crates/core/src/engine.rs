//! Persistent sharded streaming engine.
//!
//! The paper's conclusion (§6) observes that maintaining the estimate is
//! CPU-bound even when streaming from disk and points to a parallel,
//! cache-efficient variant of neighborhood sampling as follow-up work. The
//! first cut of [`crate::parallel`] parallelised each batch with
//! `std::thread::scope`, which spawns and joins fresh OS threads on **every
//! batch** — so small-batch workloads pay thread-creation cost per `w`
//! edges, the exact regime the `O(r + w)` bulk algorithm (Theorem 3.5) is
//! supposed to make cheap.
//!
//! [`ShardedEngine`] replaces that with the dataflow-style design of
//! long-lived workers fed by channels:
//!
//! * **One worker thread per shard, created once.** Each worker owns (via a
//!   mutex it holds only while processing) an independent estimator — any
//!   [`TriangleEstimator`] `+ Send`, by default a [`BulkTriangleCounter`];
//!   shards never exchange data, so the sharded pool computes exactly the
//!   same *distribution* of estimates as a sequential pool of the same
//!   size and seeds.
//! * **Batches travel over channels.** [`ShardedEngine::submit`] copies the
//!   batch once into an `Arc<[Edge]>` and sends the (cheap) `Arc` clone to
//!   every shard — `O(w)` work, no thread spawn, no join.
//! * **Submission is asynchronous; queries synchronise.** `submit` returns
//!   as soon as the batch is enqueued, letting the caller overlap reading
//!   the next batch with processing the current one. Queues are bounded
//!   (a few batches deep), so a producer that outruns the workers blocks
//!   instead of accumulating the whole stream in memory. Any state read
//!   ([`ShardedEngine::map_shards`], [`ShardedEngine::snapshot`]) first
//!   waits — on a condvar, not by spinning — until every shard has drained
//!   its queue, so observed results are identical to fully synchronous
//!   processing.
//! * **Workers are joined on drop.** Dropping the engine closes the
//!   channels; each worker exits its receive loop and is joined, so no
//!   thread outlives the engine.
//!
//! If a worker panics mid-batch (a bug in the counter, by construction),
//! its completion guard still advances the progress count so synchronising
//! callers never deadlock; the panic then resurfaces on the caller's thread
//! as a poisoned-shard error on the next query or submission.

use crate::bulk::BulkTriangleCounter;
use crate::traits::TriangleEstimator;
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use tristream_graph::Edge;

/// Drains a *batch source* — any fallible iterator of edge batches — into
/// `sink`, one call per batch in order, and returns the total number of
/// edges handed over. Stops at (and propagates) the source's first error;
/// batches sunk before the error stay sunk, matching the semantics of
/// feeding the stream by hand. The single implementation behind
/// [`ShardedEngine::consume`],
/// [`ParallelBulkTriangleCounter::process_source`] and
/// [`ShardedEstimator::process_source`].
///
/// [`ParallelBulkTriangleCounter::process_source`]: crate::ParallelBulkTriangleCounter::process_source
/// [`ShardedEstimator::process_source`]: crate::ShardedEstimator::process_source
pub fn drain_batch_source<E>(
    source: impl IntoIterator<Item = Result<Vec<Edge>, E>>,
    mut sink: impl FnMut(&[Edge]),
) -> Result<u64, E> {
    let mut edges = 0u64;
    for batch in source {
        let batch = batch?;
        edges += batch.len() as u64;
        sink(&batch);
    }
    Ok(edges)
}

/// Per-shard channel capacity, in batches. Bounded channels give
/// [`ShardedEngine::submit`] backpressure: a producer that outruns the
/// workers blocks once this many batches are queued, so engine memory stays
/// at `O(CHANNEL_DEPTH · w)` edges no matter how large the input stream is
/// — the property the streaming file reader relies on. A few batches of
/// slack is enough to overlap reading with processing.
const CHANNEL_DEPTH: usize = 4;

/// State shared between the engine front end and its worker threads.
struct Shared<C> {
    /// One independent estimator per shard. A worker locks its own slot
    /// only while processing a batch; the front end locks slots only while
    /// reading state (after synchronising).
    counters: Vec<Mutex<C>>,
    /// Number of batches fully processed by each shard.
    progress: Mutex<Vec<u64>>,
    /// Signalled by workers whenever a batch completes.
    progress_cv: Condvar,
}

impl<C> Shared<C> {
    /// Marks one batch complete for `shard` and wakes synchronising callers.
    /// Uses `into_inner` on poisoning so a panicking worker still reports
    /// progress instead of deadlocking the front end.
    fn complete_batch(&self, shard: usize) {
        let mut progress = self
            .progress
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        progress[shard] += 1;
        self.progress_cv.notify_all();
    }
}

/// Advances the shard's progress count even if batch processing panics, so
/// `ShardedEngine::sync` never waits forever on a dead worker.
struct CompletionGuard<'a, C> {
    shared: &'a Shared<C>,
    shard: usize,
}

impl<C> Drop for CompletionGuard<'_, C> {
    fn drop(&mut self) {
        self.shared.complete_batch(self.shard);
    }
}

fn worker_loop<C: TriangleEstimator + Send>(
    shared: Arc<Shared<C>>,
    shard: usize,
    batches: Receiver<Arc<[Edge]>>,
) {
    while let Ok(batch) = batches.recv() {
        let _guard = CompletionGuard {
            shared: &shared,
            shard,
        };
        #[allow(clippy::expect_used)]
        let mut counter = shared.counters[shard]
            .lock()
            // analyze: allow(P1, reason = "poisoning is only reachable after another worker panicked; resurfacing that panic beats processing on a corrupt shard")
            .expect("shard poisoned by an earlier worker panic");
        // One submitted batch = one `process_edges` call, so batch
        // boundaries — which bulk algorithms are sensitive to — are exactly
        // the caller's `submit` boundaries.
        counter.process_edges(&batch);
    }
}

/// A pool of long-lived worker threads, one per shard, each owning an
/// independent [`TriangleEstimator`] and fed batches over a channel.
///
/// The engine is generic over the per-shard estimator `C` — any
/// `TriangleEstimator + Send` works, including boxed trait objects from
/// the algorithm registry — and defaults to [`BulkTriangleCounter`], the
/// substrate of
/// [`ParallelBulkTriangleCounter`](crate::ParallelBulkTriangleCounter).
/// It can also be used directly when the caller wants to manage shard
/// seeding or aggregation itself; for the common
/// "same algorithm per shard, decorrelated seeds" case see
/// [`ShardedEstimator`](crate::ShardedEstimator).
///
/// ```
/// use tristream_core::engine::ShardedEngine;
/// use tristream_core::BulkTriangleCounter;
///
/// let shards = (0..4).map(|i| BulkTriangleCounter::new(64, i)).collect();
/// let mut engine = ShardedEngine::new(shards);
/// let stream = tristream_gen::planted_triangles(20, 40, 1);
/// for batch in stream.batches(128) {
///     engine.submit(batch);
/// }
/// let estimates: Vec<Vec<f64>> = engine.map_shards(|shard| shard.raw_estimates());
/// assert_eq!(estimates.len(), 4);
/// // Workers are joined when `engine` goes out of scope.
/// ```
pub struct ShardedEngine<C: TriangleEstimator + Send + 'static = BulkTriangleCounter> {
    shared: Arc<Shared<C>>,
    /// One batch channel per shard. Dropped (closed) before joining, which
    /// is what tells each worker to exit its receive loop.
    senders: Vec<SyncSender<Arc<[Edge]>>>,
    workers: Vec<JoinHandle<()>>,
    batches_submitted: u64,
}

impl<C: TriangleEstimator + Send + 'static> std::fmt::Debug for ShardedEngine<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedEngine")
            .field("shards", &self.num_shards())
            .field("batches_submitted", &self.batches_submitted)
            .finish_non_exhaustive()
    }
}

impl<C: TriangleEstimator + Send + 'static> ShardedEngine<C> {
    /// Spawns one worker thread per counter. The workers live until the
    /// engine is dropped.
    ///
    /// # Panics
    ///
    /// Panics if `counters` is empty.
    pub fn new(counters: Vec<C>) -> Self {
        assert!(!counters.is_empty(), "at least one shard is required");
        let shards = counters.len();
        let shared = Arc::new(Shared {
            counters: counters.into_iter().map(Mutex::new).collect(),
            progress: Mutex::new(vec![0; shards]),
            progress_cv: Condvar::new(),
        });
        let mut senders = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for shard in 0..shards {
            let (tx, rx) = mpsc::sync_channel::<Arc<[Edge]>>(CHANNEL_DEPTH);
            let shared = Arc::clone(&shared);
            senders.push(tx);
            #[allow(clippy::expect_used)]
            workers.push(
                std::thread::Builder::new()
                    .name(format!("tristream-shard-{shard}"))
                    .spawn(move || worker_loop(shared, shard, rx))
                    // analyze: allow(P1, reason = "spawn fails only on OS thread exhaustion at construction time, before any stream state exists to lose")
                    .expect("spawning shard worker thread"),
            );
        }
        Self {
            shared,
            senders,
            workers,
            batches_submitted: 0,
        }
    }

    /// Number of shards (and worker threads).
    pub fn num_shards(&self) -> usize {
        self.senders.len()
    }

    /// Number of batches submitted so far.
    pub fn batches_submitted(&self) -> u64 {
        self.batches_submitted
    }

    /// Enqueues one batch on every shard and returns without waiting for
    /// processing, as long as each shard's (bounded) queue has room; a
    /// producer that outruns the workers blocks here instead of growing
    /// memory without bound. Empty batches are no-ops.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread has died (which only happens after a panic
    /// inside batch processing).
    pub fn submit(&mut self, batch: &[Edge]) {
        if batch.is_empty() {
            return;
        }
        let batch: Arc<[Edge]> = Arc::from(batch);
        for sender in &self.senders {
            #[allow(clippy::expect_used)]
            sender
                .send(Arc::clone(&batch))
                // analyze: allow(P1, reason = "workers outlive the senders by construction and exit only by panicking; the send error resurfaces that panic on the caller's thread")
                .expect("shard worker terminated unexpectedly");
        }
        self.batches_submitted += 1;
    }

    /// Drains a *batch source* — any fallible iterator of edge batches,
    /// e.g. the text reader's `EdgeListBatches` or the binary reader's
    /// `TsbBatches` — submitting every batch in order, and returns the
    /// total number of edges submitted. Stops at (and propagates) the
    /// source's first error; batches submitted before the error stay
    /// submitted, matching the semantics of feeding the stream by hand.
    ///
    /// This is the ingestion boundary: producers only need to speak
    /// `Result<Vec<Edge>, E>`, and the engine overlaps their I/O with
    /// processing via its bounded queues.
    pub fn consume<E>(
        &mut self,
        source: impl IntoIterator<Item = Result<Vec<Edge>, E>>,
    ) -> Result<u64, E> {
        drain_batch_source(source, |batch| self.submit(batch))
    }

    /// Blocks until every shard has processed every submitted batch.
    pub fn sync(&self) {
        let target = self.batches_submitted;
        let mut progress = self
            .shared
            .progress
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        while progress.iter().any(|&done| done < target) {
            progress = self
                .shared
                .progress_cv
                .wait(progress)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    #[allow(clippy::expect_used)]
    fn lock_shard(&self, shard: usize) -> MutexGuard<'_, C> {
        self.shared.counters[shard]
            .lock()
            // analyze: allow(P1, reason = "poisoning is only reachable after a worker panicked; resurfacing that panic beats reading a corrupt shard")
            .expect("shard poisoned by a worker panic")
    }

    /// Synchronises, then applies `f` to every shard's counter in shard
    /// order, returning the collected results.
    pub fn map_shards<T>(&self, mut f: impl FnMut(&C) -> T) -> Vec<T> {
        self.sync();
        (0..self.num_shards())
            .map(|shard| f(&self.lock_shard(shard)))
            .collect()
    }

    /// Synchronises, then applies `f` to every shard's counter *mutably*
    /// in shard order — the snapshot-restore hook. Requires `&mut self`,
    /// so no batch can be submitted while shard state is being replaced;
    /// the sync barrier guarantees no worker still holds an earlier batch.
    pub fn map_shards_mut<T>(&mut self, mut f: impl FnMut(&mut C) -> T) -> Vec<T> {
        self.sync();
        (0..self.num_shards())
            .map(|shard| {
                #[allow(clippy::expect_used)]
                let mut guard = self.shared.counters[shard]
                    .lock()
                    // analyze: allow(P1, reason = "poisoning is only reachable after a worker panicked; resurfacing that panic beats writing into a corrupt shard")
                    .expect("shard poisoned by a worker panic");
                f(&mut guard)
            })
            .collect()
    }
}

impl<C: TriangleEstimator + Send + Clone + 'static> ShardedEngine<C> {
    /// Synchronises and clones every shard's counter — the building block
    /// for cloning or re-configuring a running engine. Only available when
    /// the shard estimator is `Clone` (boxed trait objects are not).
    pub fn snapshot(&self) -> Vec<C> {
        self.map_shards(|shard| shard.clone())
    }
}

impl<C: TriangleEstimator + Send + Clone + 'static> Clone for ShardedEngine<C> {
    /// Clones the engine by snapshotting shard state into a fresh worker
    /// pool. The clone starts with its own threads and an independent
    /// progress count, but identical counter state.
    fn clone(&self) -> Self {
        ShardedEngine::new(self.snapshot())
    }
}

impl<C: TriangleEstimator + Send + 'static> Drop for ShardedEngine<C> {
    fn drop(&mut self) {
        // Closing the channels ends each worker's receive loop.
        self.senders.clear();
        for worker in self.workers.drain(..) {
            // A worker that panicked already surfaced (or will surface) the
            // error via mutex poisoning; don't double-panic in drop.
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Weak;

    fn shard_counters(r_per_shard: usize, shards: usize, seed: u64) -> Vec<BulkTriangleCounter> {
        (0..shards)
            .map(|i| BulkTriangleCounter::new(r_per_shard, seed.wrapping_add(i as u64)))
            .collect()
    }

    #[test]
    #[should_panic]
    fn zero_shards_panics() {
        let _: ShardedEngine = ShardedEngine::new(Vec::new());
    }

    #[test]
    fn workers_process_submitted_batches() {
        let stream = tristream_gen::planted_triangles(20, 50, 3);
        let mut engine = ShardedEngine::new(shard_counters(32, 3, 9));
        for batch in stream.batches(64) {
            engine.submit(batch);
        }
        let seen = engine.map_shards(|shard| shard.edges_seen());
        assert_eq!(seen, vec![stream.len() as u64; 3]);
        assert!(engine.batches_submitted() > 0);
    }

    #[test]
    fn empty_batches_are_noops() {
        let mut engine = ShardedEngine::new(shard_counters(8, 2, 1));
        engine.submit(&[]);
        assert_eq!(engine.batches_submitted(), 0);
        assert_eq!(engine.map_shards(|shard| shard.edges_seen()), vec![0, 0]);
    }

    #[test]
    fn consume_drains_a_batch_source_like_manual_submission() {
        let stream = tristream_gen::planted_triangles(20, 50, 3);
        let source = stream
            .batches(64)
            .map(|b| Ok::<_, std::io::Error>(b.to_vec()));
        let mut fed = ShardedEngine::new(shard_counters(32, 2, 9));
        let edges = fed.consume(source).unwrap();
        assert_eq!(edges, stream.len() as u64);

        let mut manual = ShardedEngine::new(shard_counters(32, 2, 9));
        for batch in stream.batches(64) {
            manual.submit(batch);
        }
        assert_eq!(
            fed.map_shards(|shard| shard.raw_estimates()),
            manual.map_shards(|shard| shard.raw_estimates()),
        );
    }

    #[test]
    fn consume_stops_at_the_first_source_error_but_keeps_prior_batches() {
        let good: Vec<Edge> = (0..10u64).map(|i| Edge::new(i, i + 1)).collect();
        let source = vec![
            Ok(good.clone()),
            Err("disk on fire"),
            Ok(good.clone()), // must never be submitted
        ];
        let mut engine = ShardedEngine::new(shard_counters(8, 2, 1));
        assert_eq!(engine.consume(source), Err("disk on fire"));
        assert_eq!(engine.map_shards(|shard| shard.edges_seen()), vec![10, 10]);
    }

    #[test]
    fn engine_matches_direct_sequential_processing_bit_for_bit() {
        let stream = tristream_gen::holme_kim(150, 3, 0.5, 11);
        let mut engine = ShardedEngine::new(shard_counters(64, 4, 21));
        let mut direct = shard_counters(64, 4, 21);
        for batch in stream.batches(97) {
            engine.submit(batch);
            for counter in &mut direct {
                counter.process_batch(batch);
            }
        }
        let engine_estimates = engine.map_shards(|shard| shard.raw_estimates());
        let direct_estimates: Vec<Vec<f64>> = direct
            .iter()
            .map(|counter| counter.raw_estimates())
            .collect();
        assert_eq!(engine_estimates, direct_estimates);
    }

    #[test]
    fn drop_joins_all_workers() {
        // Each worker holds a clone of the shared `Arc`; once the engine is
        // dropped (and `Drop` has joined the workers), every clone must be
        // gone — the strong count reaching zero proves the threads exited.
        let stream = tristream_gen::planted_triangles(10, 30, 5);
        let weak: Weak<Shared<BulkTriangleCounter>>;
        {
            let mut engine = ShardedEngine::new(shard_counters(16, 4, 2));
            weak = Arc::downgrade(&engine.shared);
            for batch in stream.batches(16) {
                engine.submit(batch);
            }
        }
        assert!(
            weak.upgrade().is_none(),
            "all worker threads must terminate and release shared state on drop"
        );
    }

    #[test]
    fn generic_engine_runs_boxed_estimators_and_matches_sequential_feeding() {
        // The engine is pure transport: a shard driven through the worker
        // pool must match the same estimator fed the same batches on the
        // caller's thread, bit for bit — here with `Box<dyn>` shards of
        // *different* concrete algorithms.
        use crate::counter::TriangleCounter;
        let stream = tristream_gen::planted_triangles(15, 40, 4);
        let shards: Vec<Box<dyn TriangleEstimator + Send>> = vec![
            Box::new(TriangleCounter::new(64, 7)),
            Box::new(BulkTriangleCounter::new(64, 8)),
        ];
        let mut engine = ShardedEngine::new(shards);
        let mut reference: Vec<Box<dyn TriangleEstimator + Send>> = vec![
            Box::new(TriangleCounter::new(64, 7)),
            Box::new(BulkTriangleCounter::new(64, 8)),
        ];
        for batch in stream.batches(32) {
            engine.submit(batch);
            for shard in &mut reference {
                shard.process_edges(batch);
            }
        }
        let engine_bits: Vec<u64> = engine.map_shards(|shard| shard.estimate().to_bits());
        let reference_bits: Vec<u64> = reference.iter().map(|s| s.estimate().to_bits()).collect();
        assert_eq!(engine_bits, reference_bits);
        assert_eq!(
            engine.map_shards(|shard| shard.edges_seen()),
            vec![stream.len() as u64; 2]
        );
    }

    #[test]
    fn clone_snapshots_state_into_an_independent_pool() {
        let stream = tristream_gen::planted_triangles(15, 40, 8);
        let mut engine = ShardedEngine::new(shard_counters(32, 2, 4));
        for batch in stream.batches(32) {
            engine.submit(batch);
        }
        let cloned = engine.clone();
        assert_eq!(
            engine.map_shards(|shard| shard.raw_estimates()),
            cloned.map_shards(|shard| shard.raw_estimates()),
        );
        // Advancing the original must not touch the clone.
        engine.submit(stream.edges());
        assert_eq!(
            cloned.map_shards(|shard| shard.edges_seen()),
            vec![stream.len() as u64; 2]
        );
    }
}
