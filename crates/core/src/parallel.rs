//! Multi-core bulk triangle counting.
//!
//! The paper's conclusion (§6) observes that maintaining the estimate is
//! CPU-bound even when streaming from disk, and points to follow-up work on
//! a parallel, cache-efficient variant of neighborhood sampling. This module
//! provides the natural shared-nothing parallelisation: the estimator pool
//! is partitioned into independent shards, each shard advances over the same
//! batch on its own OS thread (scoped threads, no extra dependencies), and
//! queries aggregate across shards. Because estimators never interact, the
//! sharded counter computes exactly the same *distribution* of estimates as
//! the sequential one — each shard is simply a smaller, independent
//! [`BulkTriangleCounter`].

use crate::bulk::{BulkTriangleCounter, Level1Strategy};
use crate::counter::Aggregation;
use tristream_graph::Edge;
use tristream_sample::{mean, median_of_means};

/// A bulk triangle counter whose estimator pool is sharded across threads.
#[derive(Debug, Clone)]
pub struct ParallelBulkTriangleCounter {
    shards: Vec<BulkTriangleCounter>,
    aggregation: Aggregation,
    edges_seen: u64,
}

impl ParallelBulkTriangleCounter {
    /// Creates a counter with (at least) `r` estimators split evenly across
    /// `shards` shards. Each shard gets `ceil(r / shards)` estimators, so
    /// the effective pool can be slightly larger than requested.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `shards` is zero.
    pub fn new(r: usize, shards: usize, seed: u64) -> Self {
        Self::with_aggregation(r, shards, seed, Aggregation::Mean)
    }

    /// Creates a counter with an explicit aggregation strategy.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `shards` is zero, or a median-of-means aggregation
    /// requests zero groups.
    pub fn with_aggregation(r: usize, shards: usize, seed: u64, aggregation: Aggregation) -> Self {
        assert!(r > 0, "at least one estimator is required");
        assert!(shards > 0, "at least one shard is required");
        if let Aggregation::MedianOfMeans { groups } = aggregation {
            assert!(groups > 0, "median-of-means needs at least one group");
        }
        let per_shard = r.div_ceil(shards);
        let shards = (0..shards)
            .map(|i| {
                BulkTriangleCounter::new(per_shard, seed.wrapping_add(i as u64 * 0x9E37_79B9))
                    .with_level1_strategy(Level1Strategy::GeometricSkip)
            })
            .collect();
        Self {
            shards,
            aggregation,
            edges_seen: 0,
        }
    }

    /// Number of shards (worker threads used per batch).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total number of estimators across shards.
    pub fn num_estimators(&self) -> usize {
        self.shards.iter().map(|s| s.num_estimators()).sum()
    }

    /// Number of edges observed so far.
    pub fn edges_seen(&self) -> u64 {
        self.edges_seen
    }

    /// Ingests one batch of edges: every shard advances over the batch on
    /// its own thread.
    pub fn process_batch(&mut self, batch: &[Edge]) {
        if batch.is_empty() {
            return;
        }
        if self.shards.len() == 1 {
            self.shards[0].process_batch(batch);
        } else {
            std::thread::scope(|scope| {
                for shard in &mut self.shards {
                    scope.spawn(|| shard.process_batch(batch));
                }
            });
        }
        self.edges_seen += batch.len() as u64;
    }

    /// Processes a whole stream in batches of `batch_size` edges.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    pub fn process_stream(&mut self, edges: &[Edge], batch_size: usize) {
        assert!(batch_size > 0, "batch size must be positive");
        for chunk in edges.chunks(batch_size) {
            self.process_batch(chunk);
        }
    }

    /// Per-estimator raw estimates across all shards.
    pub fn raw_estimates(&self) -> Vec<f64> {
        self.shards.iter().flat_map(|s| s.raw_estimates()).collect()
    }

    /// The aggregated triangle-count estimate over all shards.
    pub fn estimate(&self) -> f64 {
        let raw = self.raw_estimates();
        match self.aggregation {
            Aggregation::Mean => mean(&raw),
            Aggregation::MedianOfMeans { groups } => median_of_means(&raw, groups),
        }
    }

    /// Number of estimators (across all shards) currently holding a triangle.
    pub fn estimators_with_triangle(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.estimators_with_triangle())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tristream_graph::exact::count_triangles;
    use tristream_graph::Adjacency;

    #[test]
    #[should_panic]
    fn zero_shards_panics() {
        let _ = ParallelBulkTriangleCounter::new(10, 0, 1);
    }

    #[test]
    #[should_panic]
    fn zero_estimators_panics() {
        let _ = ParallelBulkTriangleCounter::new(0, 2, 1);
    }

    #[test]
    fn pool_is_split_across_shards() {
        let c = ParallelBulkTriangleCounter::new(1_000, 4, 1);
        assert_eq!(c.num_shards(), 4);
        assert_eq!(c.num_estimators(), 1_000);
        // Uneven splits round up.
        let c = ParallelBulkTriangleCounter::new(10, 3, 1);
        assert_eq!(c.num_estimators(), 12);
    }

    #[test]
    fn parallel_estimate_matches_truth_on_a_clustered_graph() {
        let stream = tristream_gen::holme_kim(400, 4, 0.6, 3);
        let truth = count_triangles(&Adjacency::from_stream(&stream)) as f64;
        let mut c = ParallelBulkTriangleCounter::new(24_000, 6, 5);
        c.process_stream(stream.edges(), 8_192);
        let est = c.estimate();
        assert_eq!(c.edges_seen(), stream.len() as u64);
        assert!(
            (est - truth).abs() < 0.2 * truth,
            "parallel estimate {est} vs truth {truth}"
        );
        assert!(c.estimators_with_triangle() > 0);
    }

    #[test]
    fn single_shard_degenerates_to_the_sequential_counter() {
        let stream = tristream_gen::planted_triangles(25, 50, 9);
        let mut parallel = ParallelBulkTriangleCounter::new(512, 1, 7);
        parallel.process_stream(stream.edges(), 64);
        let mut sequential =
            BulkTriangleCounter::new(512, 7).with_level1_strategy(Level1Strategy::GeometricSkip);
        sequential.process_stream(stream.edges(), 64);
        assert_eq!(parallel.estimate(), sequential.estimate());
    }

    #[test]
    fn empty_batches_are_noops() {
        let mut c = ParallelBulkTriangleCounter::new(64, 4, 3);
        c.process_batch(&[]);
        assert_eq!(c.edges_seen(), 0);
        assert_eq!(c.estimate(), 0.0);
    }

    #[test]
    fn median_of_means_aggregation_is_supported() {
        let stream = tristream_gen::planted_triangles(60, 120, 5);
        let mut c = ParallelBulkTriangleCounter::with_aggregation(
            8_000,
            4,
            3,
            Aggregation::MedianOfMeans { groups: 8 },
        );
        c.process_stream(stream.edges(), 2_048);
        let est = c.estimate();
        assert!((est - 60.0).abs() < 0.35 * 60.0, "estimate {est}");
    }
}
