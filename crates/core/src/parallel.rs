//! Multi-core bulk triangle counting.
//!
//! The paper's conclusion (§6) observes that maintaining the estimate is
//! CPU-bound even when streaming from disk, and points to follow-up work on
//! a parallel, cache-efficient variant of neighborhood sampling. This module
//! provides the natural shared-nothing parallelisation: the estimator pool
//! is partitioned into independent shards, each shard advances over the same
//! batch on its own long-lived worker thread (see [`crate::engine`]), and
//! queries aggregate across shards. Because estimators never interact, the
//! sharded counter computes exactly the same *distribution* of estimates as
//! the sequential one — each shard is simply a smaller, independent
//! [`BulkTriangleCounter`].
//!
//! Worker threads are created **once**, when the counter is built, and are
//! fed batches over channels; [`process_batch`](ParallelBulkTriangleCounter::process_batch)
//! only copies the batch and enqueues it, so the per-batch hot path contains
//! no thread spawn or join. Queries ([`estimate`](ParallelBulkTriangleCounter::estimate)
//! and friends) synchronise with the workers first, so results are
//! indistinguishable from fully synchronous processing.

use crate::bulk::{BulkTriangleCounter, Level1Strategy};
use crate::counter::Aggregation;
use crate::engine::ShardedEngine;
use crate::traits::TriangleEstimator;
use tristream_graph::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};
use tristream_graph::Edge;
use tristream_sample::{mean, median_of_means};

/// Multiplier used to decorrelate per-shard seeds (the golden-ratio mixing
/// constant). Part of the counter's deterministic seeding contract: shard
/// `i` is seeded with [`shard_seed`]`(seed, i)` = `seed + i * SHARD_SEED_STRIDE`.
pub const SHARD_SEED_STRIDE: u64 = 0x9E37_79B9;

/// The per-shard seed under the deterministic sharding contract: shard
/// `shard` of a counter constructed with root seed `seed` is seeded
/// `seed + shard · `[`SHARD_SEED_STRIDE`] (wrapping). This helper is the
/// single implementation of that arithmetic — `S1-seeding` requires all
/// derivation sites to reference it — so reference implementations stay
/// estimate-for-estimate comparable by construction.
#[inline]
#[must_use]
pub fn shard_seed(seed: u64, shard: usize) -> u64 {
    seed.wrapping_add(shard as u64 * SHARD_SEED_STRIDE)
}

/// Builds the shard pool behind a [`ParallelBulkTriangleCounter`]:
/// `ceil(r / shards)` estimators per shard, shard `i` seeded
/// `seed + i * `[`SHARD_SEED_STRIDE`]. This *is* the counter's seeding
/// contract — exposed so reference implementations (e.g. the
/// spawn-per-batch benchmark baseline) stay estimate-for-estimate
/// comparable by construction rather than by copying the recipe.
///
/// # Panics
///
/// Panics if `r` or `shards` is zero.
pub fn shard_counters(
    r: usize,
    shards: usize,
    seed: u64,
    strategy: Level1Strategy,
) -> Vec<BulkTriangleCounter> {
    assert!(r > 0, "at least one estimator is required");
    assert!(shards > 0, "at least one shard is required");
    let per_shard = r.div_ceil(shards);
    (0..shards)
        .map(|i| {
            BulkTriangleCounter::new(per_shard, shard_seed(seed, i)).with_level1_strategy(strategy)
        })
        .collect()
}

/// A bulk triangle counter whose estimator pool is sharded across a pool of
/// persistent worker threads.
#[derive(Debug, Clone)]
pub struct ParallelBulkTriangleCounter {
    engine: ShardedEngine,
    aggregation: Aggregation,
    edges_seen: u64,
}

impl ParallelBulkTriangleCounter {
    /// Creates a counter with (at least) `r` estimators split evenly across
    /// `shards` shards. Each shard gets `ceil(r / shards)` estimators, so
    /// the effective pool can be slightly larger than requested.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `shards` is zero.
    pub fn new(r: usize, shards: usize, seed: u64) -> Self {
        Self::with_aggregation(r, shards, seed, Aggregation::Mean)
    }

    /// Creates a counter with an explicit aggregation strategy.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `shards` is zero, or a median-of-means aggregation
    /// requests zero groups.
    pub fn with_aggregation(r: usize, shards: usize, seed: u64, aggregation: Aggregation) -> Self {
        assert!(r > 0, "at least one estimator is required");
        assert!(shards > 0, "at least one shard is required");
        if let Aggregation::MedianOfMeans { groups } = aggregation {
            assert!(groups > 0, "median-of-means needs at least one group");
        }
        let counters = shard_counters(r, shards, seed, Level1Strategy::GeometricSkip);
        Self {
            engine: ShardedEngine::new(counters),
            aggregation,
            edges_seen: 0,
        }
    }

    /// Selects how level-1 resampling iterates over each shard's pool,
    /// mirroring [`BulkTriangleCounter::with_level1_strategy`]; returns
    /// `self` for builder-style chaining. The default is
    /// [`Level1Strategy::GeometricSkip`].
    ///
    /// Intended to be called at construction time; state already processed
    /// is preserved (the shards are snapshotted into a fresh worker pool).
    pub fn with_level1_strategy(self, strategy: Level1Strategy) -> Self {
        let counters = self
            .engine
            .snapshot()
            .into_iter()
            .map(|counter| counter.with_level1_strategy(strategy))
            .collect();
        Self {
            engine: ShardedEngine::new(counters),
            aggregation: self.aggregation,
            edges_seen: self.edges_seen,
        }
    }

    /// The level-1 resampling strategy shards use.
    pub fn level1_strategy(&self) -> Level1Strategy {
        self.engine.map_shards(|shard| shard.level1_strategy())[0]
    }

    /// Number of shards (persistent worker threads).
    pub fn num_shards(&self) -> usize {
        self.engine.num_shards()
    }

    /// Total number of estimators across shards.
    pub fn num_estimators(&self) -> usize {
        self.engine
            .map_shards(|shard| shard.num_estimators())
            .iter()
            .sum()
    }

    /// Number of edges observed so far.
    pub fn edges_seen(&self) -> u64 {
        self.edges_seen
    }

    /// Ingests one batch of edges: the batch is enqueued on every shard's
    /// persistent worker and this call returns without waiting, so the
    /// caller can overlap producing the next batch with processing.
    pub fn process_batch(&mut self, batch: &[Edge]) {
        if batch.is_empty() {
            return;
        }
        self.engine.submit(batch);
        self.edges_seen += batch.len() as u64;
    }

    /// Processes a whole stream in batches of `batch_size` edges.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    pub fn process_stream(&mut self, edges: &[Edge], batch_size: usize) {
        assert!(batch_size > 0, "batch size must be positive");
        for chunk in edges.chunks(batch_size) {
            self.process_batch(chunk);
        }
    }

    /// Ingests a whole *batch source* — any fallible iterator of edge
    /// batches, such as
    /// `tristream_graph::io::read_edge_list_batched_file` or
    /// `tristream_graph::binary::read_edges_binary_batched_file` — and
    /// returns the number of edges ingested. The source's first error is
    /// propagated; edges ingested before it remain counted.
    pub fn process_source<E>(
        &mut self,
        source: impl IntoIterator<Item = Result<Vec<Edge>, E>>,
    ) -> Result<u64, E> {
        crate::engine::drain_batch_source(source, |batch| self.process_batch(batch))
    }

    /// Per-estimator raw estimates across all shards (waits for in-flight
    /// batches first).
    pub fn raw_estimates(&self) -> Vec<f64> {
        self.engine
            .map_shards(|shard| shard.raw_estimates())
            .into_iter()
            .flatten()
            .collect()
    }

    /// The aggregated triangle-count estimate over all shards (waits for
    /// in-flight batches first).
    pub fn estimate(&self) -> f64 {
        let raw = self.raw_estimates();
        match self.aggregation {
            Aggregation::Mean => mean(&raw),
            Aggregation::MedianOfMeans { groups } => median_of_means(&raw, groups),
        }
    }

    /// Number of estimators (across all shards) currently holding a triangle.
    pub fn estimators_with_triangle(&self) -> usize {
        self.engine
            .map_shards(|shard| shard.estimators_with_triangle())
            .iter()
            .sum()
    }
}

impl TriangleEstimator for ParallelBulkTriangleCounter {
    /// A single edge is a batch of one, as for the sequential bulk counter.
    fn process_edge(&mut self, edge: Edge) {
        self.process_batch(&[edge]);
    }

    /// One call, one batch on every shard — identical boundaries to
    /// [`ParallelBulkTriangleCounter::process_batch`].
    fn process_edges(&mut self, edges: &[Edge]) {
        self.process_batch(edges);
    }

    fn estimate(&self) -> f64 {
        ParallelBulkTriangleCounter::estimate(self)
    }

    fn edges_seen(&self) -> u64 {
        ParallelBulkTriangleCounter::edges_seen(self)
    }

    /// Sum of the shard pools' estimator state.
    fn memory_words(&self) -> usize {
        self.engine
            .map_shards(TriangleEstimator::memory_words)
            .iter()
            .sum()
    }
}

/// A sharded, multi-threaded wrapper around *any* [`TriangleEstimator`]:
/// `shards` independent instances built by a caller-supplied factory, each
/// advanced on its own persistent worker thread (the generic
/// [`ShardedEngine`]), with the final estimate the plain mean of the shard
/// estimates.
///
/// The factory receives each shard's seed under the same contract as
/// [`shard_counters`]: shard `i` gets `seed + i ·`[`SHARD_SEED_STRIDE`].
/// With a single shard the wrapper is *bit-identical* to the sequential
/// estimator fed the same batches — the property the parity tests pin.
///
/// This is the execution path behind `tristream-cli count --parallel
/// --algo <name>`: the registry's boxed constructors plug straight in as
/// `ShardedEstimator<Box<dyn TriangleEstimator + Send>>`.
#[derive(Debug)]
pub struct ShardedEstimator<C: TriangleEstimator + Send + 'static> {
    engine: ShardedEngine<C>,
    edges_seen: u64,
}

impl<C: TriangleEstimator + Send + 'static> ShardedEstimator<C> {
    /// Builds `shards` estimators via `factory` — called with each shard's
    /// decorrelated seed, in shard order — and spawns the worker pool.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn from_factory(shards: usize, seed: u64, mut factory: impl FnMut(u64) -> C) -> Self {
        assert!(shards > 0, "at least one shard is required");
        let counters = (0..shards).map(|i| factory(shard_seed(seed, i))).collect();
        Self {
            engine: ShardedEngine::new(counters),
            edges_seen: 0,
        }
    }

    /// Number of shards (persistent worker threads).
    pub fn num_shards(&self) -> usize {
        self.engine.num_shards()
    }

    /// Enqueues one batch on every shard without waiting for processing.
    pub fn process_batch(&mut self, batch: &[Edge]) {
        if batch.is_empty() {
            return;
        }
        self.engine.submit(batch);
        self.edges_seen += batch.len() as u64;
    }

    /// Ingests a whole batch source (see
    /// [`ShardedEngine::consume`]), returning the number of edges
    /// ingested; the source's first error is propagated.
    pub fn process_source<E>(
        &mut self,
        source: impl IntoIterator<Item = Result<Vec<Edge>, E>>,
    ) -> Result<u64, E> {
        crate::engine::drain_batch_source(source, |batch| self.process_batch(batch))
    }

    /// Per-shard estimates, in shard order (waits for in-flight batches).
    pub fn shard_estimates(&self) -> Vec<f64> {
        self.engine.map_shards(|shard| shard.estimate())
    }

    /// Per-shard snapshots, in shard order — the building blocks the
    /// [`TriangleEstimator::snapshot`] container nests, exposed so callers
    /// can also ship shard state to independent processes.
    pub fn shard_snapshots(&self) -> Result<Vec<Vec<u8>>, SnapshotError> {
        self.engine
            .map_shards(|shard| shard.snapshot())
            .into_iter()
            .collect()
    }

    /// Merge snapshots taken by `N` *independent* single-process
    /// estimators into this `N`-shard estimator, under the shard-seed
    /// contract: process `i` must have been seeded `shard_seed(seed, i)`
    /// (the seed [`from_factory`](Self::from_factory) hands shard `i`) and
    /// fed the same stream as its peers. Because every shard sees the
    /// whole stream and the combined estimate is the shard mean, the
    /// merged estimator's `estimate()` is bit-identical to the
    /// single-process `N`-shard run over that stream.
    ///
    /// Snapshot `i` replaces shard `i`'s state. All snapshots must agree
    /// on `edges_seen` (they claim to describe the same stream) and the
    /// count must match [`num_shards`](Self::num_shards); mismatches are
    /// [`SnapshotError::Incompatible`] and leave earlier shards already
    /// restored — callers treat a failed merge as fatal for the receiver,
    /// exactly as a failed [`TriangleEstimator::restore`] would be.
    pub fn merge_shard_snapshots(&mut self, snapshots: &[Vec<u8>]) -> Result<(), SnapshotError> {
        if snapshots.len() != self.num_shards() {
            return Err(SnapshotError::Incompatible {
                reason: format!(
                    "merging {} snapshots into {} shards",
                    snapshots.len(),
                    self.num_shards()
                ),
            });
        }
        let mut edges = None;
        for (i, bytes) in snapshots.iter().enumerate() {
            let claimed = snapshot_edges_seen(bytes)?;
            match edges {
                None => edges = Some(claimed),
                Some(prev) if prev != claimed => {
                    return Err(SnapshotError::Incompatible {
                        reason: format!(
                            "snapshot {i} claims {claimed} edges seen but its peers claim {prev}; \
                             merged shards must describe the same stream"
                        ),
                    });
                }
                Some(_) => {}
            }
        }
        let mut results = Vec::with_capacity(snapshots.len());
        self.engine.map_shards_mut(|shard| {
            let i = results.len();
            results.push(shard.restore(&snapshots[i]));
            results.len()
        });
        for result in results {
            result?;
        }
        self.edges_seen = edges.unwrap_or(0);
        Ok(())
    }
}

/// Decode the `edges_seen` a (bulk or sharded) estimator snapshot claims.
fn snapshot_edges_seen(bytes: &[u8]) -> Result<u64, SnapshotError> {
    let reader = SnapshotReader::parse(bytes)?;
    let mut meta = reader.section(crate::snapshot::SEC_META)?;
    let kind = meta.u8("snapshot kind tag")?;
    match kind {
        crate::snapshot::KIND_BULK => {
            let _r = meta.u64("estimator count")?;
            let _seed = meta.u64("construction seed")?;
            meta.u64("edges seen")
        }
        crate::snapshot::KIND_SHARDED => {
            let _shards = meta.u64("shard count")?;
            meta.u64("edges seen")
        }
        other => Err(SnapshotError::Incompatible {
            reason: format!("unknown snapshot kind {other}"),
        }),
    }
}

impl<C: TriangleEstimator + Send + 'static> TriangleEstimator for ShardedEstimator<C> {
    fn process_edge(&mut self, edge: Edge) {
        self.process_batch(&[edge]);
    }

    fn process_edges(&mut self, edges: &[Edge]) {
        self.process_batch(edges);
    }

    /// Mean of the shard estimates. Every shard sees the whole stream, so
    /// each shard estimate is already unbiased and the mean only reduces
    /// variance; with equal per-shard pools this equals pooling all
    /// estimators in one counter.
    fn estimate(&self) -> f64 {
        mean(&self.shard_estimates())
    }

    fn edges_seen(&self) -> u64 {
        self.edges_seen
    }

    /// Sum of the shard estimators' state.
    fn memory_words(&self) -> usize {
        self.engine
            .map_shards(|shard| shard.memory_words())
            .iter()
            .sum()
    }

    /// Snapshots are supported exactly when every shard supports them.
    fn supports_snapshot(&self) -> bool {
        self.engine
            .map_shards(|shard| shard.supports_snapshot())
            .iter()
            .all(|&s| s)
    }

    /// A `KIND_SHARDED` container nesting each shard's own snapshot (see
    /// [`crate::snapshot`] for the layout).
    fn snapshot(&self) -> Result<Vec<u8>, SnapshotError> {
        let shard_bytes = self.shard_snapshots()?;
        let mut meta = Vec::with_capacity(17);
        meta.push(crate::snapshot::KIND_SHARDED);
        tristream_graph::snapshot::put_u64s(
            &mut meta,
            &[shard_bytes.len() as u64, self.edges_seen],
        );
        let mut writer = SnapshotWriter::new();
        writer.section(crate::snapshot::SEC_META, &meta)?;
        for (i, bytes) in shard_bytes.iter().enumerate() {
            let Ok(offset) = u16::try_from(i) else {
                return Err(SnapshotError::Incompatible {
                    reason: format!("{} shards exceed the section id space", shard_bytes.len()),
                });
            };
            writer.section(crate::snapshot::SEC_SHARD_BASE + offset, bytes)?;
        }
        Ok(writer.finish())
    }

    /// Restore from a `KIND_SHARDED` snapshot with a matching shard
    /// count: shard `i` is handed nested snapshot `i`, and `edges_seen`
    /// is adopted from the container.
    fn restore(&mut self, snapshot: &[u8]) -> Result<(), SnapshotError> {
        let reader = SnapshotReader::parse(snapshot)?;
        let mut meta = reader.section(crate::snapshot::SEC_META)?;
        let kind = meta.u8("snapshot kind tag")?;
        if kind != crate::snapshot::KIND_SHARDED {
            return Err(SnapshotError::Incompatible {
                reason: format!(
                    "expected a sharded snapshot (kind {}), found kind {kind}",
                    crate::snapshot::KIND_SHARDED
                ),
            });
        }
        let shards = meta.u64("shard count")?;
        let edges_seen = meta.u64("edges seen")?;
        meta.finish()?;
        if shards != self.num_shards() as u64 {
            return Err(SnapshotError::Incompatible {
                reason: format!(
                    "snapshot holds {shards} shards but this estimator runs {}",
                    self.num_shards()
                ),
            });
        }
        let mut nested = Vec::with_capacity(self.num_shards());
        for i in 0..self.num_shards() {
            let Ok(offset) = u16::try_from(i) else {
                return Err(SnapshotError::Incompatible {
                    reason: format!("{} shards exceed the section id space", self.num_shards()),
                });
            };
            let mut section = reader.section(crate::snapshot::SEC_SHARD_BASE + offset)?;
            nested.push(section.rest().to_vec());
        }
        let mut results = Vec::with_capacity(self.num_shards());
        self.engine.map_shards_mut(|shard| {
            let i = results.len();
            results.push(shard.restore(&nested[i]));
        });
        for result in results {
            result?;
        }
        self.edges_seen = edges_seen;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tristream_graph::exact::count_triangles;
    use tristream_graph::Adjacency;

    #[test]
    #[should_panic]
    fn zero_shards_panics() {
        let _ = ParallelBulkTriangleCounter::new(10, 0, 1);
    }

    #[test]
    #[should_panic]
    fn zero_estimators_panics() {
        let _ = ParallelBulkTriangleCounter::new(0, 2, 1);
    }

    #[test]
    fn pool_is_split_across_shards() {
        let c = ParallelBulkTriangleCounter::new(1_000, 4, 1);
        assert_eq!(c.num_shards(), 4);
        assert_eq!(c.num_estimators(), 1_000);
        // Uneven splits round up.
        let c = ParallelBulkTriangleCounter::new(10, 3, 1);
        assert_eq!(c.num_estimators(), 12);
    }

    #[test]
    fn parallel_estimate_matches_truth_on_a_clustered_graph() {
        let stream = tristream_gen::holme_kim(400, 4, 0.6, 3);
        let truth = count_triangles(&Adjacency::from_stream(&stream)) as f64;
        let mut c = ParallelBulkTriangleCounter::new(24_000, 6, 5);
        c.process_stream(stream.edges(), 8_192);
        let est = c.estimate();
        assert_eq!(c.edges_seen(), stream.len() as u64);
        assert!(
            (est - truth).abs() < 0.2 * truth,
            "parallel estimate {est} vs truth {truth}"
        );
        assert!(c.estimators_with_triangle() > 0);
    }

    #[test]
    fn single_shard_degenerates_to_the_sequential_counter() {
        let stream = tristream_gen::planted_triangles(25, 50, 9);
        let mut parallel = ParallelBulkTriangleCounter::new(512, 1, 7);
        parallel.process_stream(stream.edges(), 64);
        let mut sequential =
            BulkTriangleCounter::new(512, 7).with_level1_strategy(Level1Strategy::GeometricSkip);
        sequential.process_stream(stream.edges(), 64);
        assert_eq!(parallel.estimate(), sequential.estimate());
    }

    #[test]
    fn single_shard_per_estimator_strategy_matches_the_sequential_counter() {
        // API-parity satellite: selecting PerEstimator on the parallel
        // counter must reproduce the sequential PerEstimator counter
        // bit-for-bit on a single shard (same seed, same batching).
        let stream = tristream_gen::planted_triangles(20, 60, 17);
        let mut parallel = ParallelBulkTriangleCounter::new(256, 1, 13)
            .with_level1_strategy(Level1Strategy::PerEstimator);
        assert_eq!(parallel.level1_strategy(), Level1Strategy::PerEstimator);
        parallel.process_stream(stream.edges(), 37);
        let mut sequential = BulkTriangleCounter::new(256, 13);
        assert_eq!(sequential.level1_strategy(), Level1Strategy::PerEstimator);
        sequential.process_stream(stream.edges(), 37);
        assert_eq!(parallel.raw_estimates(), sequential.raw_estimates());
        assert_eq!(parallel.estimate(), sequential.estimate());
    }

    /// The pre-refactor execution model: fresh scoped threads per batch over
    /// the same per-shard counters. Kept as a reference implementation for
    /// the equivalence tests below.
    fn scoped_thread_estimates(
        r: usize,
        shards: usize,
        seed: u64,
        edges: &[Edge],
        batch_size: usize,
    ) -> Vec<f64> {
        let mut pool = shard_counters(r, shards, seed, Level1Strategy::GeometricSkip);
        for batch in edges.chunks(batch_size) {
            std::thread::scope(|scope| {
                for shard in &mut pool {
                    scope.spawn(|| shard.process_batch(batch));
                }
            });
        }
        pool.iter().flat_map(|s| s.raw_estimates()).collect()
    }

    #[test]
    fn persistent_pool_matches_scoped_threads_and_sequential_shards_exactly() {
        // Distributional-equivalence guarantee, checked at the strongest
        // possible level: same seeds ⇒ bit-identical per-estimator
        // estimates across all three execution models.
        let stream = tristream_gen::holme_kim(250, 3, 0.5, 19);
        let (r, shards, seed, batch) = (600, 3, 23, 113);

        let mut persistent = ParallelBulkTriangleCounter::new(r, shards, seed);
        persistent.process_stream(stream.edges(), batch);
        let persistent_raw = persistent.raw_estimates();

        let scoped_raw = scoped_thread_estimates(r, shards, seed, stream.edges(), batch);

        let mut sequential_raw = Vec::new();
        for mut counter in shard_counters(r, shards, seed, Level1Strategy::GeometricSkip) {
            counter.process_stream(stream.edges(), batch);
            sequential_raw.extend(counter.raw_estimates());
        }

        assert_eq!(persistent_raw, scoped_raw);
        assert_eq!(persistent_raw, sequential_raw);
    }

    #[test]
    fn clone_is_independent_of_the_original() {
        let stream = tristream_gen::planted_triangles(15, 45, 6);
        let mut a = ParallelBulkTriangleCounter::new(128, 2, 3);
        a.process_stream(stream.edges(), 32);
        let b = a.clone();
        assert_eq!(a.raw_estimates(), b.raw_estimates());
        a.process_batch(stream.edges());
        assert_eq!(b.edges_seen(), stream.len() as u64);
        assert_eq!(a.edges_seen(), 2 * stream.len() as u64);
    }

    #[test]
    fn empty_batches_are_noops() {
        let mut c = ParallelBulkTriangleCounter::new(64, 4, 3);
        c.process_batch(&[]);
        assert_eq!(c.edges_seen(), 0);
        assert_eq!(c.estimate(), 0.0);
    }

    #[test]
    fn process_source_matches_process_stream_bit_for_bit() {
        let stream = tristream_gen::planted_triangles(25, 50, 9);
        let mut by_stream = ParallelBulkTriangleCounter::new(512, 2, 7);
        by_stream.process_stream(stream.edges(), 64);
        let mut by_source = ParallelBulkTriangleCounter::new(512, 2, 7);
        let edges = by_source
            .process_source(
                stream
                    .batches(64)
                    .map(|b| Ok::<_, std::io::Error>(b.to_vec())),
            )
            .unwrap();
        assert_eq!(edges, stream.len() as u64);
        assert_eq!(by_source.edges_seen(), by_stream.edges_seen());
        assert_eq!(by_source.raw_estimates(), by_stream.raw_estimates());
    }

    #[test]
    fn process_source_propagates_errors_and_keeps_the_prefix_counted() {
        let good: Vec<Edge> = (0..8u64).map(|i| Edge::new(i, i + 1)).collect();
        let mut c = ParallelBulkTriangleCounter::new(64, 2, 3);
        let result = c.process_source(vec![Ok(good.clone()), Err("gone"), Ok(good)]);
        assert_eq!(result, Err("gone"));
        assert_eq!(c.edges_seen(), 8, "prefix before the error stays counted");
    }

    #[test]
    fn sharded_estimator_single_shard_is_bit_identical_to_the_sequential_counter() {
        // The generic factory path must preserve the engine's transport
        // transparency: one shard, same seed, same batch boundaries ⇒ the
        // same bits as the sequential estimator — including with the
        // PerEstimator level-1 strategy, extending the existing
        // PerEstimator parity test to the generic engine.
        let stream = tristream_gen::planted_triangles(20, 60, 17);
        for strategy in [Level1Strategy::PerEstimator, Level1Strategy::GeometricSkip] {
            let mut sharded = ShardedEstimator::from_factory(1, 13, |seed| {
                BulkTriangleCounter::new(256, seed).with_level1_strategy(strategy)
            });
            let mut sequential = BulkTriangleCounter::new(256, 13).with_level1_strategy(strategy);
            for batch in stream.batches(37) {
                sharded.process_batch(batch);
                sequential.process_batch(batch);
            }
            assert_eq!(
                TriangleEstimator::estimate(&sharded).to_bits(),
                TriangleEstimator::estimate(&sequential).to_bits(),
                "strategy {strategy:?}"
            );
            assert_eq!(TriangleEstimator::edges_seen(&sharded), stream.len() as u64);
            assert_eq!(
                TriangleEstimator::memory_words(&sharded),
                TriangleEstimator::memory_words(&sequential)
            );
        }
    }

    #[test]
    fn sharded_estimator_uses_the_shard_seed_stride_contract() {
        // The factory must be handed exactly the seeds `shard_counters`
        // would use, so generic and specialised sharding stay comparable.
        let mut seeds_seen = Vec::new();
        let sharded = ShardedEstimator::from_factory(3, 21, |seed| {
            seeds_seen.push(seed);
            BulkTriangleCounter::new(8, seed)
        });
        assert_eq!(sharded.num_shards(), 3);
        assert_eq!(
            seeds_seen,
            vec![21, 21 + SHARD_SEED_STRIDE, 21 + 2 * SHARD_SEED_STRIDE]
        );
    }

    #[test]
    fn sharded_estimator_over_boxed_shards_matches_concrete_shards() {
        let stream = tristream_gen::planted_triangles(25, 50, 9);
        let mut boxed = ShardedEstimator::from_factory(2, 7, |seed| {
            Box::new(BulkTriangleCounter::new(64, seed)) as Box<dyn TriangleEstimator + Send>
        });
        let mut concrete =
            ShardedEstimator::from_factory(2, 7, |seed| BulkTriangleCounter::new(64, seed));
        for batch in stream.batches(64) {
            boxed.process_batch(batch);
            concrete.process_batch(batch);
        }
        assert_eq!(
            TriangleEstimator::estimate(&boxed).to_bits(),
            TriangleEstimator::estimate(&concrete).to_bits()
        );
        assert_eq!(boxed.shard_estimates(), concrete.shard_estimates());
    }

    #[test]
    fn median_of_means_aggregation_is_supported() {
        let stream = tristream_gen::planted_triangles(60, 120, 5);
        let mut c = ParallelBulkTriangleCounter::with_aggregation(
            8_000,
            4,
            3,
            Aggregation::MedianOfMeans { groups: 8 },
        );
        c.process_stream(stream.edges(), 2_048);
        let est = c.estimate();
        assert!((est - 60.0).abs() < 0.35 * 60.0, "estimate {est}");
    }
}
