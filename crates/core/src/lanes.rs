//! Hand-unrolled u64×4 lane helpers for the bulk hot path.
//!
//! The `simd` cargo feature (default on) selects
//! [`BulkKernel::Lanes`](crate::bulk::BulkKernel) as the default dispatch
//! of [`BulkTriangleCounter::process_batch`](crate::bulk::BulkTriangleCounter::process_batch);
//! the helpers here are *portable-SIMD-shaped* — fixed-width `[u64; LANES]`
//! groups that a vectorising backend maps onto 256-bit registers — but they
//! compile on every target and are **always built**, so the scalar fallback
//! and the lane path can be compared bit-for-bit inside one binary (see
//! `tests/lane_equivalence.rs`).
//!
//! # Bit-identity contract
//!
//! [`lemire4`] replicates the vendored `rand` crate's bounded-draw formula
//! — `(raw as u128 * span as u128) >> 64`, one raw `u64` per draw — over a
//! lane group, so a kernel that draws a group at a time consumes the RNG
//! stream in exactly the order the scalar loop does. Everything else in
//! this module is memory schedule (whole-word bitset masks in
//! [`crate::pool`], probe-start prefetching for [`crate::fastmap::FastMap`])
//! and cannot change results by construction.

/// Lane width of the hand-unrolled kernels: four `u64`s — one 256-bit
/// vector register on AVX2-class hardware, two on 128-bit NEON/SSE.
pub const LANES: usize = 4;

// The helpers below run inside the per-edge batch loops; the region lets
// `tristream-analyze` reject allocating tokens at review time.
// analyze: region(no-alloc)

/// `rand`'s multiply-shift bounded draw (`gen_range(0..span)`) applied to a
/// lane group of raw `u64` draws. Bit-identical per lane to the vendored
/// implementation: `((raw as u128 * span as u128) >> 64) as u64`.
#[inline]
pub fn lemire4(raws: [u64; LANES], span: u64) -> [u64; LANES] {
    debug_assert!(span > 0, "cannot draw from an empty range");
    let mut out = [0u64; LANES];
    for (slot, raw) in out.iter_mut().zip(raws) {
        *slot = ((raw as u128 * span as u128) >> 64) as u64;
    }
    out
}

/// Prefetches the cache line holding `slice[idx]` into all cache levels
/// (x86-64 `PREFETCHT0`; a no-op on other architectures and for
/// out-of-range indices). Purely a scheduling hint — it never faults and
/// never changes an architecturally visible result.
#[inline]
pub fn prefetch_read<T>(slice: &[T], idx: usize) {
    #[cfg(target_arch = "x86_64")]
    if idx < slice.len() {
        // SAFETY: the pointer is in bounds (checked above), and PREFETCHT0
        // performs no architecturally visible memory access — it cannot
        // fault, write, or alias anything; the intrinsic is hint-only.
        unsafe {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            _mm_prefetch::<_MM_HINT_T0>(slice.as_ptr().add(idx).cast::<i8>());
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (slice, idx);
    }
}
// analyze: endregion

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, RngCore};

    /// An RNG that replays a fixed word — lets each lane's formula be
    /// checked against the vendored `gen_range` one raw value at a time.
    struct Fixed(u64);

    impl RngCore for Fixed {
        fn next_u64(&mut self) -> u64 {
            self.0
        }
    }

    #[test]
    fn lemire4_matches_the_vendored_gen_range_per_lane() {
        let raws = [0u64, 1, u64::MAX / 3, u64::MAX];
        for span in [1u64, 2, 7, 4096, u64::MAX] {
            let lanes = lemire4(raws, span);
            for (lane, &raw) in raws.iter().enumerate() {
                let expected: u64 = Fixed(raw).gen_range(0..span);
                assert_eq!(lanes[lane], expected, "raw {raw:#x}, span {span}");
                assert!(lanes[lane] < span);
            }
        }
    }

    #[test]
    fn prefetch_is_safe_at_any_index() {
        let data = [1u64, 2, 3];
        for idx in 0..10 {
            prefetch_read(&data, idx);
        }
        prefetch_read::<u64>(&[], 0);
        assert_eq!(data, [1, 2, 3]);
    }
}
