//! Multi-estimator streaming triangle counting (Theorems 3.3 and 3.4).
//!
//! [`TriangleCounter`] keeps `r` independent [`EstimatorState`]s and advances
//! all of them on every arriving edge — the straightforward `O(m·r)`-time
//! implementation the paper describes before introducing bulk processing
//! (§3.3). Use [`crate::bulk::BulkTriangleCounter`] for large streams; this
//! type remains the reference implementation the bulk version is tested
//! against, and is perfectly adequate for moderate `r`.
//!
//! Two aggregations are provided:
//!
//! * [`Aggregation::Mean`] — the plain average of Theorem 3.3, whose
//!   sufficient `r` is `(6/ε²)(mΔ/τ)ln(2/δ)`.
//! * [`Aggregation::MedianOfMeans`] — the Theorem 3.4 aggregation: group the
//!   estimators, average within groups, take the median of the group means.
//!   Its sufficient `r` is governed by the tangle coefficient γ(G), which is
//!   often far smaller than 2Δ.

use crate::estimator::EstimatorState;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use tristream_graph::Edge;
use tristream_sample::{mean, median_of_means};

/// How the per-estimator values are combined into one estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Aggregation {
    /// Plain averaging over all estimators (Theorem 3.3).
    #[default]
    Mean,
    /// Median of `groups` group-means (Theorem 3.4). The group count is
    /// typically `Θ(log(1/δ))`; the paper uses `12·ln(1/δ)`.
    MedianOfMeans {
        /// Number of groups the estimators are split into.
        groups: usize,
    },
}

/// Streaming triangle counter built from `r` neighborhood-sampling
/// estimators, processing edges one at a time.
#[derive(Debug, Clone)]
pub struct TriangleCounter {
    estimators: Vec<EstimatorState>,
    edges_seen: u64,
    rng: SmallRng,
    aggregation: Aggregation,
}

impl TriangleCounter {
    /// Creates a counter with `r` estimators and the plain-mean aggregation,
    /// seeded deterministically.
    ///
    /// # Panics
    ///
    /// Panics if `r` is zero.
    pub fn new(r: usize, seed: u64) -> Self {
        Self::with_aggregation(r, seed, Aggregation::Mean)
    }

    /// Creates a counter with an explicit aggregation strategy.
    ///
    /// # Panics
    ///
    /// Panics if `r` is zero, or if a median-of-means aggregation requests
    /// zero groups.
    pub fn with_aggregation(r: usize, seed: u64, aggregation: Aggregation) -> Self {
        assert!(r > 0, "at least one estimator is required");
        if let Aggregation::MedianOfMeans { groups } = aggregation {
            assert!(groups > 0, "median-of-means needs at least one group");
        }
        Self {
            estimators: vec![EstimatorState::new(); r],
            edges_seen: 0,
            rng: SmallRng::seed_from_u64(seed),
            aggregation,
        }
    }

    /// Number of estimators `r`.
    pub fn num_estimators(&self) -> usize {
        self.estimators.len()
    }

    /// Number of edges observed so far (`m`).
    pub fn edges_seen(&self) -> u64 {
        self.edges_seen
    }

    /// The aggregation strategy in use.
    pub fn aggregation(&self) -> Aggregation {
        self.aggregation
    }

    /// Read-only view of the estimator states (used by the sampler, the
    /// transitivity estimator and the test suites).
    pub fn estimators(&self) -> &[EstimatorState] {
        &self.estimators
    }

    /// Processes the next edge of the stream through every estimator.
    pub fn process_edge(&mut self, edge: Edge) {
        self.edges_seen += 1;
        let position = self.edges_seen;
        for est in &mut self.estimators {
            est.process_edge(&mut self.rng, edge, position);
        }
    }

    /// Processes a whole slice of edges (order preserved).
    pub fn process_edges(&mut self, edges: &[Edge]) {
        for &e in edges {
            self.process_edge(e);
        }
    }

    /// Per-estimator unbiased triangle estimates (Lemma 3.2).
    pub fn raw_estimates(&self) -> Vec<f64> {
        self.estimators
            .iter()
            .map(|e| e.triangle_estimate(self.edges_seen))
            .collect()
    }

    /// The aggregated triangle-count estimate.
    pub fn estimate(&self) -> f64 {
        let raw = self.raw_estimates();
        match self.aggregation {
            Aggregation::Mean => mean(&raw),
            Aggregation::MedianOfMeans { groups } => median_of_means(&raw, groups),
        }
    }

    /// The aggregated estimate under an explicit aggregation, regardless of
    /// the one configured at construction (useful for ablation studies).
    pub fn estimate_with(&self, aggregation: Aggregation) -> f64 {
        let raw = self.raw_estimates();
        match aggregation {
            Aggregation::Mean => mean(&raw),
            Aggregation::MedianOfMeans { groups } => median_of_means(&raw, groups),
        }
    }

    /// Number of estimators currently holding a triangle — a cheap health
    /// indicator: if this is 0 the estimate is 0 and more estimators (or more
    /// stream) are needed.
    pub fn estimators_with_triangle(&self) -> usize {
        self.estimators.iter().filter(|e| e.has_triangle()).count()
    }

    /// Words of [`EstimatorState`] one estimator costs — the sizing unit
    /// the algorithm registry uses for equal-memory comparisons.
    pub fn words_per_estimator() -> usize {
        crate::traits::words_for_bytes(std::mem::size_of::<EstimatorState>())
    }
}

impl crate::traits::TriangleEstimator for TriangleCounter {
    fn process_edge(&mut self, edge: Edge) {
        TriangleCounter::process_edge(self, edge);
    }

    fn process_edges(&mut self, edges: &[Edge]) {
        TriangleCounter::process_edges(self, edges);
    }

    fn estimate(&self) -> f64 {
        TriangleCounter::estimate(self)
    }

    fn edges_seen(&self) -> u64 {
        TriangleCounter::edges_seen(self)
    }

    /// `r` fixed-size [`EstimatorState`]s — the `O(r)` space of Theorem 3.3.
    fn memory_words(&self) -> usize {
        self.estimators.len() * Self::words_per_estimator()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tristream_graph::exact::count_triangles;
    use tristream_graph::{Adjacency, EdgeStream};

    fn complete_graph_edges(n: u64) -> Vec<Edge> {
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                edges.push(Edge::new(i, j));
            }
        }
        edges
    }

    #[test]
    #[should_panic]
    fn zero_estimators_panics() {
        let _ = TriangleCounter::new(0, 1);
    }

    #[test]
    #[should_panic]
    fn zero_groups_panics() {
        let _ = TriangleCounter::with_aggregation(10, 1, Aggregation::MedianOfMeans { groups: 0 });
    }

    #[test]
    fn empty_stream_estimates_zero() {
        let c = TriangleCounter::new(16, 3);
        assert_eq!(c.estimate(), 0.0);
        assert_eq!(c.edges_seen(), 0);
        assert_eq!(c.estimators_with_triangle(), 0);
    }

    #[test]
    fn triangle_free_stream_estimates_zero() {
        let mut c = TriangleCounter::new(64, 3);
        for i in 0..50u64 {
            c.process_edge(Edge::new(i, i + 1));
        }
        assert_eq!(c.estimate(), 0.0);
        assert_eq!(c.estimators_with_triangle(), 0);
    }

    #[test]
    fn counts_k6_accurately_with_enough_estimators() {
        let edges = complete_graph_edges(6);
        let truth = 20.0;
        let mut c = TriangleCounter::new(6_000, 17);
        c.process_edges(&edges);
        let est = c.estimate();
        assert!(
            (est - truth).abs() < 0.1 * truth,
            "estimate {est}, truth {truth}"
        );
        assert!(c.estimators_with_triangle() > 0);
    }

    #[test]
    fn accuracy_improves_with_more_estimators() {
        // Compare the error distribution of a small pool vs a large pool on
        // the same stream, averaged over seeds to dodge luck.
        let stream = tristream_gen::planted_triangles(40, 120, 3);
        let truth = 40.0;
        let mut err_small = 0.0;
        let mut err_large = 0.0;
        for seed in 0..6u64 {
            let mut small = TriangleCounter::new(200, seed);
            let mut large = TriangleCounter::new(8_000, seed);
            for e in stream.iter() {
                small.process_edge(e);
                large.process_edge(e);
            }
            err_small += (small.estimate() - truth).abs() / truth;
            err_large += (large.estimate() - truth).abs() / truth;
        }
        assert!(
            err_large < err_small,
            "large pool error {err_large} should beat small pool {err_small}"
        );
    }

    #[test]
    fn estimate_is_unbiased_across_seeds() {
        // The mean over many independent counters must approach the truth
        // even when each counter is small.
        let stream = EdgeStream::from_pairs_dedup(vec![
            (1, 2),
            (2, 3),
            (1, 3),
            (3, 4),
            (4, 5),
            (3, 5),
            (1, 5),
        ]);
        let truth = count_triangles(&Adjacency::from_stream(&stream)) as f64;
        let runs = 600u64;
        let mut sum = 0.0;
        for seed in 0..runs {
            let mut c = TriangleCounter::new(32, seed);
            for e in stream.iter() {
                c.process_edge(e);
            }
            sum += c.estimate();
        }
        let mean_est = sum / runs as f64;
        assert!(
            (mean_est - truth).abs() < 0.15 * truth,
            "mean over runs {mean_est}, truth {truth}"
        );
    }

    #[test]
    fn median_of_means_is_accurate_when_groups_are_large_enough() {
        // Theorem 3.4 sizes each group so its mean is within ε·τ with
        // constant probability; with amply-sized groups both aggregations
        // must land near the truth on a triangle-rich stream.
        let stream = tristream_gen::planted_triangles(100, 200, 3);
        let truth = 100.0;
        let mut c =
            TriangleCounter::with_aggregation(10_000, 11, Aggregation::MedianOfMeans { groups: 5 });
        for e in stream.iter() {
            c.process_edge(e);
        }
        let mom = c.estimate();
        let plain = c.estimate_with(Aggregation::Mean);
        assert!(
            (plain - truth).abs() < 0.3 * truth,
            "plain {plain}, truth {truth}"
        );
        assert!(
            (mom - truth).abs() < 0.4 * truth,
            "median-of-means {mom}, truth {truth}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let edges = complete_graph_edges(8);
        let mut a = TriangleCounter::new(100, 5);
        let mut b = TriangleCounter::new(100, 5);
        a.process_edges(&edges);
        b.process_edges(&edges);
        assert_eq!(a.estimate(), b.estimate());
        let mut c = TriangleCounter::new(100, 6);
        c.process_edges(&edges);
        // Different seed will almost surely differ (not a hard guarantee, but
        // with 100 estimators on K8 the probability of an exact tie is tiny).
        assert_ne!(a.estimate().to_bits(), c.estimate().to_bits());
    }
}
