//! Doc-drift tests holding `docs/PROTOCOL.md` and `docs/OPERATIONS.md` to
//! the implementation: every frame type, error code, magic byte, version,
//! and STATS field must appear in the spec, and the top-level docs must
//! link to it. Adding a protocol variant without documenting it fails here.

use tristream_serve::protocol::{
    ErrorCode, FrameType, StreamStats, PROTOCOL_MAGIC, PROTOCOL_VERSION,
};

fn repo_doc(rel: &str) -> String {
    let path = format!("{}/../../{rel}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

#[test]
fn every_frame_type_is_specified_by_name_and_byte() {
    let spec = repo_doc("docs/PROTOCOL.md");
    for t in FrameType::ALL {
        let heading = format!("{} (0x{:02X})", t.name(), t.byte());
        assert!(
            spec.contains(&heading),
            "docs/PROTOCOL.md is missing a section for frame {heading:?}"
        );
    }
}

#[test]
fn every_error_code_is_specified_with_its_wire_byte() {
    let spec = repo_doc("docs/PROTOCOL.md");
    for c in ErrorCode::ALL {
        // The error-code table pins name to wire value: `| 1 | MALFORMED_FRAME |`.
        let row = format!("| {} | {} |", c.byte(), c.name());
        assert!(
            spec.contains(&row),
            "docs/PROTOCOL.md error-code table is missing the row {row:?}"
        );
    }
}

#[test]
fn magic_and_version_are_specified_byte_for_byte() {
    let spec = repo_doc("docs/PROTOCOL.md");
    let magic_bytes = PROTOCOL_MAGIC
        .iter()
        .map(|b| format!("0x{b:02X}"))
        .collect::<Vec<_>>()
        .join(" ");
    assert!(
        spec.contains(&magic_bytes),
        "docs/PROTOCOL.md must spell out the HELLO magic as {magic_bytes:?}"
    );
    assert!(
        spec.contains(&format!("version is **{PROTOCOL_VERSION}**")),
        "docs/PROTOCOL.md must state the current protocol version"
    );
}

#[test]
fn operations_doc_covers_every_stats_field() {
    let ops = repo_doc("docs/OPERATIONS.md");
    // Compile-checked exhaustiveness anchor: the destructure binds every
    // field without `..`, so adding one to StreamStats without extending
    // the list below (and the doc) is a compile error here.
    fn _stats_fields_anchor(s: StreamStats) {
        let StreamStats {
            name: _,
            algo: _,
            edges: _,
            estimate: _,
            memory_words: _,
            ingest_batches: _,
            ingest_nanos: _,
            queries: _,
            query_nanos: _,
        } = s;
    }
    for field in [
        "name",
        "algo",
        "edges",
        "estimate",
        "memory_words",
        "ingest_batches",
        "ingest_nanos",
        "queries",
        "query_nanos",
    ] {
        assert!(
            ops.contains(&format!("`{field}`")),
            "docs/OPERATIONS.md STATS reference is missing the `{field}` field"
        );
    }
}

#[test]
fn top_level_docs_link_to_the_serve_doc_suite() {
    for doc in ["README.md", "ARCHITECTURE.md"] {
        let text = repo_doc(doc);
        for target in ["docs/PROTOCOL.md", "docs/OPERATIONS.md"] {
            assert!(text.contains(target), "{doc} must link to {target}");
        }
    }
}
