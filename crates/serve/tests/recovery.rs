//! Crash-recovery integration tests: a daemon with a `--state-dir` is
//! killed mid-stream and restarted, and the recovered stream — resumed
//! from its latest checkpoint plus the recorded replay offset — finishes
//! with an estimate bit-identical to an uninterrupted run.

// Test harness: helper fns may abort on setup failure (clippy's
// allow-expect-in-tests only covers `#[test]` bodies, not helpers).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::net::SocketAddr;
use std::path::PathBuf;
use std::thread::JoinHandle;
use std::time::Duration;
use tristream_baselines::registry::{find_algo, AlgoParams};
use tristream_core::{ShardedEstimator, TriangleEstimator};
use tristream_graph::Edge;
use tristream_serve::protocol::{ErrorCode, FrameType, Request};
use tristream_serve::{Client, CreateStream, Server, ServerOptions, SERVE_STREAM_HINT};

/// A fresh, uniquely named state directory for one test.
fn state_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tristream-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Binds a daemon with the given options on an ephemeral loopback port and
/// runs it on a background thread, returning the recovery report alongside.
fn spawn_server_with(
    options: ServerOptions,
) -> (
    SocketAddr,
    Vec<String>,
    Vec<PathBuf>,
    JoinHandle<std::io::Result<()>>,
) {
    let server = Server::bind_with("127.0.0.1:0", options).expect("bind ephemeral port");
    let addr = server.local_addr();
    let recovered = server.recovered_streams().to_vec();
    let skipped = server.skipped_checkpoints().to_vec();
    let handle = std::thread::spawn(move || server.run());
    (addr, recovered, skipped, handle)
}

/// A deterministic triangle-rich test stream (900 edges).
fn test_edges() -> Vec<Edge> {
    tristream_gen::triangle_rich_three_regular(600, 3)
        .edges()
        .to_vec()
}

/// The offline twin of a served stream — same engine recipe as the server
/// (see `docs/PROTOCOL.md`), so an uninterrupted run can be computed
/// without a third daemon.
fn offline_engine(
    algo: &str,
    seed: u64,
    budget_words: u64,
    shards: usize,
) -> ShardedEstimator<Box<dyn TriangleEstimator + Send>> {
    let spec = find_algo(algo).expect("registry algorithm");
    let space = spec.space_for_budget(budget_words as usize, &SERVE_STREAM_HINT);
    let shard_space = if spec.splits_across_shards {
        space.div_ceil(shards)
    } else {
        space
    };
    ShardedEstimator::from_factory(shards, seed, |shard_seed| {
        spec.build(&AlgoParams {
            space: shard_space,
            seed: shard_seed,
            window: None,
        })
    })
}

#[test]
fn a_killed_server_recovers_from_its_checkpoint_and_matches_the_uninterrupted_run() {
    let dir = state_dir("kill");
    let edges = test_edges();
    let (algo, seed, shards, batch, interval) = ("neighborhood-bulk", 42u64, 2u16, 64usize, 4u64);

    // ---- Life 1: ingest past a checkpoint boundary, then die. ----
    let (addr, recovered, skipped, server) = spawn_server_with(ServerOptions {
        state_dir: Some(dir.clone()),
        checkpoint_interval: interval,
        ..ServerOptions::default()
    });
    assert!(
        recovered.is_empty() && skipped.is_empty(),
        "fresh state dir"
    );

    let mut client = Client::connect(addr).expect("connect");
    let mut spec = CreateStream::new("prod", algo);
    spec.seed = seed;
    spec.shards = shards;
    client.create_stream(&spec).expect("create");
    client
        .send_edges_batched("prod", &edges, batch)
        .expect("ingest");

    // Checkpoints are written only on the EDGES cadence, never on drain, so
    // the on-disk state after a graceful SHUTDOWN is byte-for-byte what a
    // SIGKILL at the same point would have left: the last full multiple of
    // `interval` batches. Draining here *is* the crash simulation.
    client.shutdown().expect("shutdown");
    server.join().expect("join").expect("server run");

    // ---- Life 2: recover, resume from the recorded offset, catch up. ----
    let (addr, recovered, skipped, server) = spawn_server_with(ServerOptions {
        state_dir: Some(dir.clone()),
        checkpoint_interval: interval,
        ..ServerOptions::default()
    });
    assert_eq!(recovered, vec!["prod".to_string()]);
    assert!(skipped.is_empty());

    let mut client = Client::connect(addr).expect("reconnect");
    let reply = client.query("prod").expect("query recovered stream");
    let offset = reply.edges as usize;
    // The replay offset is the latest checkpoint: a full multiple of
    // `interval` batches, strictly inside the stream (edges past it died
    // with the process).
    assert!(offset > 0 && offset < edges.len(), "offset {offset}");
    assert_eq!(offset % (batch * interval as usize), 0, "offset {offset}");

    // Resume ingesting from the recorded offset with the original batch
    // boundaries (the offset is batch-aligned by construction).
    client
        .send_edges_batched("prod", &edges[offset..], batch)
        .expect("replay tail");
    let served = client.query("prod").expect("final query");
    assert_eq!(served.edges, edges.len() as u64);

    // 0 estimate mismatches vs the uninterrupted run: bit-identical.
    let mut twin = offline_engine(algo, seed, spec.budget_words, shards as usize);
    for chunk in edges.chunks(batch) {
        twin.process_batch(chunk);
    }
    assert_eq!(
        served.estimate.to_bits(),
        twin.estimate().to_bits(),
        "recovered {} vs uninterrupted {}",
        served.estimate,
        twin.estimate()
    );

    client.shutdown().expect("shutdown");
    server.join().expect("join").expect("server run");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_checkpoints_are_skipped_and_reported_while_valid_ones_recover() {
    let dir = state_dir("corrupt");
    let edges = test_edges();

    // Life 1 writes one valid checkpoint.
    let (addr, _, _, server) = spawn_server_with(ServerOptions {
        state_dir: Some(dir.clone()),
        checkpoint_interval: 1,
        ..ServerOptions::default()
    });
    let mut client = Client::connect(addr).expect("connect");
    let mut spec = CreateStream::new("good", "neighborhood-bulk");
    spec.seed = 9;
    client.create_stream(&spec).expect("create");
    client
        .send_edges_batched("good", &edges[..256], 128)
        .expect("ingest");
    client.shutdown().expect("shutdown");
    server.join().expect("join").expect("server run");

    // Sabotage: a second checkpoint file full of garbage.
    let bogus = dir.join("ff00.tsc");
    std::fs::write(&bogus, b"definitely not a checkpoint").expect("write garbage");

    // Life 2 starts anyway: the valid stream recovers, the garbage file is
    // reported, nothing panics.
    let (addr, recovered, skipped, server) = spawn_server_with(ServerOptions {
        state_dir: Some(dir.clone()),
        ..ServerOptions::default()
    });
    assert_eq!(recovered, vec!["good".to_string()]);
    assert_eq!(skipped, vec![bogus]);

    let mut client = Client::connect(addr).expect("connect");
    let reply = client.query("good").expect("recovered stream answers");
    assert_eq!(reply.edges, 256);

    client.shutdown().expect("shutdown");
    server.join().expect("join").expect("server run");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn restore_of_corrupt_bytes_is_refused_with_bad_snapshot() {
    let (addr, _, _, server) = spawn_server_with(ServerOptions::default());
    let mut client = Client::connect(addr).expect("connect");
    let err = client
        .restore(b"definitely not a checkpoint")
        .expect_err("corrupt restore refused");
    assert_eq!(
        err.server_error().map(|e| e.code),
        Some(ErrorCode::BadSnapshot)
    );
    // The connection (and the server) survive the refusal.
    client
        .create_stream(&CreateStream::new("alive", "exact"))
        .expect("create after refusal");
    client.shutdown().expect("shutdown");
    server.join().expect("join").expect("server run");
}

#[test]
fn a_durable_server_refuses_streams_that_cannot_be_checkpointed() {
    let dir = state_dir("refuse");
    let (addr, _, _, server) = spawn_server_with(ServerOptions {
        state_dir: Some(dir.clone()),
        ..ServerOptions::default()
    });
    let mut client = Client::connect(addr).expect("connect");

    // `exact` reports `snapshotable: false` in the registry: creating it on
    // a durable server would silently skip its checkpoints, so the server
    // refuses with the typed error instead.
    let err = client
        .create_stream(&CreateStream::new("prod", "exact"))
        .expect_err("non-snapshotable algo refused under --state-dir");
    assert_eq!(
        err.server_error().map(|e| e.code),
        Some(ErrorCode::SnapshotUnsupported)
    );

    // A snapshotable algorithm is welcome on the same server.
    client
        .create_stream(&CreateStream::new("prod", "neighborhood-bulk"))
        .expect("snapshotable algo accepted");

    client.shutdown().expect("shutdown");
    server.join().expect("join").expect("server run");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn protocol_v1_clients_still_complete_the_handshake() {
    let (addr, _, _, server) = spawn_server_with(ServerOptions::default());

    // Speak version 1 by hand: the additive v2 bump must keep accepting it.
    let conn = std::net::TcpStream::connect(addr).expect("connect");
    let mut writer = &conn;
    let hello = Request::Hello { version: 1 }
        .encode_payload()
        .expect("encode");
    tristream_graph::frame::write_frame(&mut writer, FrameType::Hello.byte(), &hello)
        .expect("write");
    let (t, _) = tristream_graph::frame::read_frame(&mut &conn)
        .expect("read")
        .expect("a reply");
    assert_eq!(t, FrameType::Ok.byte(), "v1 HELLO is still welcome");
    drop(conn);

    let mut client = Client::connect(addr).expect("v2 client");
    client.shutdown().expect("shutdown");
    server.join().expect("join").expect("server run");
}

#[test]
fn idle_connections_are_closed_and_do_not_stall_the_drain() {
    let (addr, _, _, server) = spawn_server_with(ServerOptions {
        idle_timeout: Some(Duration::from_millis(150)),
        ..ServerOptions::default()
    });

    // An idle client: completes the handshake, then goes silent.
    let idle = Client::connect(addr).expect("connect idle");
    std::thread::sleep(Duration::from_millis(600));

    // A live client shuts the server down; the drain must not wait on the
    // idle connection (which the deadline already closed), so `run`
    // returns promptly.
    let mut live = Client::connect(addr).expect("connect live");
    live.shutdown().expect("shutdown");
    server.join().expect("join").expect("server run");
    drop(idle);
}
