//! Integration tests driving a real daemon over a real TCP socket: offline
//! parity (bit-identical estimates), multi-tenant isolation, malformed-frame
//! survival, and graceful drain.

// Test harness: helper fns may abort on setup failure (clippy's
// allow-expect-in-tests only covers `#[test]` bodies, not helpers).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::net::SocketAddr;
use std::thread::JoinHandle;
use tristream_baselines::registry::{find_algo, AlgoParams};
use tristream_core::{ShardedEstimator, TriangleEstimator};
use tristream_graph::Edge;
use tristream_serve::protocol::{ErrorCode, FrameType, Request};
use tristream_serve::{Client, ClientError, CreateStream, Server, SERVE_STREAM_HINT};

/// Binds a daemon on an ephemeral loopback port and runs it on a
/// background thread. The returned handle joins cleanly once a client
/// sends SHUTDOWN.
fn spawn_server() -> (SocketAddr, JoinHandle<std::io::Result<()>>) {
    let server = Server::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

/// A deterministic triangle-rich test stream.
fn test_edges() -> Vec<Edge> {
    tristream_gen::triangle_rich_three_regular(600, 3)
        .edges()
        .to_vec()
}

/// Builds the offline twin of a served stream: the same engine recipe the
/// server documents in `docs/PROTOCOL.md` — `space_for_budget` under
/// `SERVE_STREAM_HINT`, `div_ceil` pool split, `shard_seed` seeding via
/// `from_factory`.
fn offline_engine(
    algo: &str,
    seed: u64,
    budget_words: u64,
    shards: usize,
) -> ShardedEstimator<Box<dyn TriangleEstimator + Send>> {
    let spec = find_algo(algo).expect("registry algorithm");
    let space = spec.space_for_budget(budget_words as usize, &SERVE_STREAM_HINT);
    let shard_space = if spec.splits_across_shards {
        space.div_ceil(shards)
    } else {
        space
    };
    ShardedEstimator::from_factory(shards, seed, |shard_seed| {
        spec.build(&AlgoParams {
            space: shard_space,
            seed: shard_seed,
            window: None,
        })
    })
}

#[test]
fn served_estimate_is_bit_identical_to_the_offline_parallel_path() {
    let (addr, server) = spawn_server();
    let edges = test_edges();
    let (algo, seed, budget, shards, batch) = ("neighborhood-bulk", 42u64, 1u64 << 14, 3u16, 128);

    let mut client = Client::connect(addr).expect("connect");
    let mut spec = CreateStream::new("parity", algo);
    spec.seed = seed;
    spec.budget_words = budget;
    spec.shards = shards;
    client.create_stream(&spec).expect("create");
    client
        .send_edges_batched("parity", &edges, batch)
        .expect("ingest");
    let served = client.query("parity").expect("query");

    // The offline `count --algo --parallel` path, same seed, same batch
    // boundaries.
    let mut offline = offline_engine(algo, seed, budget, shards as usize);
    for chunk in edges.chunks(batch) {
        offline.process_batch(chunk);
    }
    assert_eq!(
        served.estimate.to_bits(),
        offline.estimate().to_bits(),
        "served {} vs offline {}",
        served.estimate,
        offline.estimate()
    );
    assert_eq!(served.edges, edges.len() as u64);
    assert_eq!(served.memory_words, offline.memory_words() as u64);

    client.shutdown().expect("shutdown");
    server.join().expect("join").expect("server run");
}

#[test]
fn one_daemon_sustains_two_isolated_streams_with_different_algorithms() {
    let (addr, server) = spawn_server();
    let edges = test_edges();
    let batch = 200;

    // Two tenants, two different registry algorithms, interleaved ingest
    // from two concurrent connections.
    let mut alice = Client::connect(addr).expect("connect alice");
    let mut bob = Client::connect(addr).expect("connect bob");
    let mut spec_a = CreateStream::new("alice", "neighborhood-bulk");
    spec_a.seed = 7;
    spec_a.shards = 2;
    alice.create_stream(&spec_a).expect("create alice");
    let mut spec_b = CreateStream::new("bob", "pagh-tsourakakis");
    spec_b.seed = 11;
    spec_b.shards = 2;
    bob.create_stream(&spec_b).expect("create bob");

    // Interleave: alternate batches between the tenants' connections.
    let chunks: Vec<&[Edge]> = edges.chunks(batch).collect();
    for chunk in &chunks {
        alice.send_edges("alice", chunk).expect("alice edges");
        bob.send_edges("bob", chunk).expect("bob edges");
    }

    let got_a = alice.query("alice").expect("query alice");
    let got_b = bob.query("bob").expect("query bob");

    // Each tenant matches its own offline twin despite the interleaving.
    let mut twin_a = offline_engine("neighborhood-bulk", 7, spec_a.budget_words, 2);
    let mut twin_b = offline_engine("pagh-tsourakakis", 11, spec_b.budget_words, 2);
    for chunk in &chunks {
        twin_a.process_batch(chunk);
        twin_b.process_batch(chunk);
    }
    assert_eq!(got_a.estimate.to_bits(), twin_a.estimate().to_bits());
    assert_eq!(got_b.estimate.to_bits(), twin_b.estimate().to_bits());

    // STATS sees both tenants, in creation order, with live counters.
    let stats = alice.stats().expect("stats");
    assert_eq!(stats.len(), 2);
    assert_eq!(stats[0].name, "alice");
    assert_eq!(stats[0].algo, "neighborhood-bulk");
    assert_eq!(stats[1].name, "bob");
    assert_eq!(stats[1].algo, "pagh-tsourakakis");
    for s in &stats {
        assert_eq!(s.edges, edges.len() as u64);
        assert_eq!(s.ingest_batches, chunks.len() as u64);
        assert_eq!(s.queries, 1);
        assert!(s.memory_words > 0);
    }

    // DELETE tears one tenant down; the other keeps serving.
    bob.delete("bob").expect("delete bob");
    let err = bob.query("bob").expect_err("bob is gone");
    assert_eq!(
        err.server_error().map(|e| e.code),
        Some(ErrorCode::UnknownStream)
    );
    let still = alice.query("alice").expect("alice still lives");
    assert_eq!(still.estimate.to_bits(), got_a.estimate.to_bits());

    alice.shutdown().expect("shutdown");
    server.join().expect("join").expect("server run");
}

#[test]
fn concurrent_queries_do_not_perturb_ingest_results() {
    let (addr, server) = spawn_server();
    let edges = test_edges();
    let batch = 64;

    let mut ingest = Client::connect(addr).expect("connect ingest");
    let mut spec = CreateStream::new("live", "neighborhood-bulk");
    spec.seed = 5;
    spec.shards = 2;
    ingest.create_stream(&spec).expect("create");

    // A second connection hammers queries while the first ingests.
    let querier = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("connect querier");
        let mut replies = 0u32;
        for _ in 0..50 {
            let reply = client.query("live").expect("mid-stream query");
            assert!(reply.estimate.is_finite());
            replies += 1;
        }
        replies
    });
    for chunk in edges.chunks(batch) {
        ingest.send_edges("live", chunk).expect("edges");
    }
    assert_eq!(querier.join().expect("querier"), 50);

    // Mid-stream queries must not have changed the final state: still
    // bit-identical to the offline twin.
    let served = ingest.query("live").expect("final query");
    let mut twin = offline_engine("neighborhood-bulk", 5, spec.budget_words, 2);
    for chunk in edges.chunks(batch) {
        twin.process_batch(chunk);
    }
    assert_eq!(served.estimate.to_bits(), twin.estimate().to_bits());

    ingest.shutdown().expect("shutdown");
    server.join().expect("join").expect("server run");
}

#[test]
fn malformed_frames_get_error_replies_and_the_server_survives() {
    let (addr, server) = spawn_server();
    let mut client = Client::connect(addr).expect("connect");
    client
        .create_stream(&CreateStream::new("sturdy", "exact"))
        .expect("create");

    // Unknown frame type: ERROR frame, connection stays usable.
    let (t, payload) = client
        .raw_roundtrip(0x55, b"junk")
        .expect("roundtrip")
        .expect("a reply");
    assert_eq!(t, FrameType::Error.byte());
    assert_eq!(payload[0], ErrorCode::MalformedFrame.byte());

    // Truncated CREATE payload: ERROR frame, still usable.
    let (t, payload) = client
        .raw_roundtrip(FrameType::Create.byte(), &[1, 2, 3])
        .expect("roundtrip")
        .expect("a reply");
    assert_eq!(t, FrameType::Error.byte());
    assert_eq!(payload[0], ErrorCode::MalformedFrame.byte());

    // EDGES with a corrupt embedded .tsb stream: BAD_EDGE_PAYLOAD.
    let mut bad_edges = Request::Edges {
        name: "sturdy".to_string(),
        edges: vec![Edge::new(1u64, 2u64)],
    }
    .encode_payload()
    .expect("encode");
    let len = bad_edges.len();
    bad_edges.truncate(len - 3); // truncate inside the record data
    let (t, payload) = client
        .raw_roundtrip(FrameType::Edges.byte(), &bad_edges)
        .expect("roundtrip")
        .expect("a reply");
    assert_eq!(t, FrameType::Error.byte());
    assert_eq!(payload[0], ErrorCode::BadEdgePayload.byte());

    // Requests against missing streams: UNKNOWN_STREAM.
    let err = client.query("missing").expect_err("unknown stream");
    assert_eq!(
        err.server_error().map(|e| e.code),
        Some(ErrorCode::UnknownStream)
    );

    // After all that abuse, the server still answers real work correctly.
    client
        .send_edges(
            "sturdy",
            &[
                Edge::new(1u64, 2u64),
                Edge::new(2u64, 3u64),
                Edge::new(1u64, 3u64),
            ],
        )
        .expect("edges");
    let reply = client.query("sturdy").expect("query");
    assert_eq!(reply.estimate, 1.0, "exact counter sees the one triangle");

    client.shutdown().expect("shutdown");
    server.join().expect("join").expect("server run");
}

#[test]
fn connections_that_skip_the_handshake_are_refused() {
    let (addr, server) = spawn_server();
    // Speak raw frames without HELLO: first request must be refused and
    // the connection closed.
    let conn = std::net::TcpStream::connect(addr).expect("connect");
    let mut writer = &conn;
    let payload = Request::Stats.encode_payload().expect("encode");
    tristream_graph::frame::write_frame(&mut writer, FrameType::Stats.byte(), &payload)
        .expect("write");
    let (t, payload) = tristream_graph::frame::read_frame(&mut &conn)
        .expect("read")
        .expect("a reply");
    assert_eq!(t, FrameType::Error.byte());
    assert_eq!(payload[0], ErrorCode::MalformedFrame.byte());
    assert!(
        tristream_graph::frame::read_frame(&mut &conn)
            .expect("read")
            .is_none(),
        "server hangs up after refusing the handshake"
    );

    // A proper client still gets in afterwards.
    let mut client = Client::connect(addr).expect("connect");
    client.shutdown().expect("shutdown");
    server.join().expect("join").expect("server run");
}

#[test]
fn graceful_drain_flushes_batches_answers_queries_and_joins_everything() {
    let (addr, server) = spawn_server();
    let edges = test_edges();

    let mut client = Client::connect(addr).expect("connect");
    let mut spec = CreateStream::new("draining", "neighborhood-bulk");
    spec.seed = 3;
    spec.shards = 4;
    client.create_stream(&spec).expect("create");
    client
        .send_edges_batched("draining", &edges, 64)
        .expect("ingest");

    // A second connection is mid-session when the drain starts.
    let mut bystander = Client::connect(addr).expect("connect bystander");

    client.shutdown().expect("shutdown acked");

    // The draining server still answers reads on live connections but
    // refuses new mutations.
    let reply = bystander.query("draining").expect("read during drain");
    assert_eq!(reply.edges, edges.len() as u64);
    let err = bystander
        .send_edges("draining", &edges[..3])
        .expect_err("mutations refused during drain");
    assert_eq!(
        err.server_error().map(|e| e.code),
        Some(ErrorCode::Draining)
    );
    drop(bystander);

    // run() returning Ok proves: accept loop exited, every handler thread
    // joined, every engine flushed its queues and joined its workers, and
    // nothing panicked on the way down.
    server
        .join()
        .expect("no panicking threads")
        .expect("clean drain");

    // The port is actually released: new connections are refused (or reset),
    // not served.
    assert!(
        Client::connect(addr).is_err(),
        "daemon must be gone after the drain"
    );
}

#[test]
fn version_mismatches_are_refused_with_unsupported_version() {
    let (addr, server) = spawn_server();
    let conn = std::net::TcpStream::connect(addr).expect("connect");
    let mut writer = &conn;
    let hello = Request::Hello { version: 99 }
        .encode_payload()
        .expect("encode");
    tristream_graph::frame::write_frame(&mut writer, FrameType::Hello.byte(), &hello)
        .expect("write");
    let (t, payload) = tristream_graph::frame::read_frame(&mut &conn)
        .expect("read")
        .expect("a reply");
    assert_eq!(t, FrameType::Error.byte());
    assert_eq!(payload[0], ErrorCode::UnsupportedVersion.byte());
    drop(conn);

    let mut client = Client::connect(addr).expect("current version still welcome");
    client.shutdown().expect("shutdown");
    server.join().expect("join").expect("server run");
}

/// Compile-time-ish guard used by the drain test above: a `ClientError`
/// display never panics (exercises the error plumbing end to end).
#[test]
fn client_errors_render() {
    let err = ClientError::Protocol("demo".to_string());
    assert!(err.to_string().contains("demo"));
}
