//! The `tristream serve` daemon: accept loop, per-connection handlers, and
//! graceful drain.
//!
//! Std-only by design (threads + [`TcpListener`], no async runtime), to
//! match the workspace's vendored-deps constraint:
//!
//! * **One handler thread per connection.** Tenant counts are small and
//!   engine work dominates; a thread per connection keeps the control flow
//!   linear and lets the OS do the scheduling.
//! * **Engine work happens on engine threads.** A handler only *enqueues*
//!   EDGES batches (bounded queues, backpressure) and *synchronises* for
//!   queries; per-stream mutexes (see [`crate::table`]) keep tenants
//!   isolated, so a slow query on one stream never stalls ingest on
//!   another.
//! * **Drain is cooperative.** A SHUTDOWN frame flips the draining flag;
//!   the accept loop stops accepting (woken by a loopback self-connect),
//!   handlers notice within one poll interval (their reads time out at
//!   frame boundaries only, so a timeout can never split a frame), finish
//!   their in-flight request, and exit; finally the stream table is
//!   dropped, which flushes every queued batch and joins every engine
//!   worker. The same path serves SIGTERM-style supervision: point the
//!   supervisor's stop command at `tristream-cli client shutdown` (std has
//!   no portable signal handling; see `docs/OPERATIONS.md`).

use crate::protocol::{transport_error, ErrorCode, Request, Response, WireError, PROTOCOL_VERSION};
use crate::table::{ingest_batch, query_stream, StreamTable};
use std::io::Write;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use tristream_graph::{frame, GraphError};

/// How often an idle connection handler re-checks the draining flag. Reads
/// time out at this interval *only* while waiting for a frame-type byte —
/// never mid-frame — so polling can't desynchronise the stream.
const DRAIN_POLL: Duration = Duration::from_millis(50);

/// State shared between the accept loop and every connection handler.
struct Shared {
    table: StreamTable,
    draining: AtomicBool,
}

impl Shared {
    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    shared: Arc<Shared>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("local_addr", &self.local_addr)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Binds the daemon to `addr` (e.g. `"127.0.0.1:7878"`; port 0 picks an
    /// ephemeral port — read it back with [`Server::local_addr`]).
    pub fn bind<A: ToSocketAddrs>(addr: A) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        Ok(Self {
            listener,
            local_addr,
            shared: Arc::new(Shared {
                table: StreamTable::new(),
                draining: AtomicBool::new(false),
            }),
        })
    }

    /// The address the daemon is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Runs the accept loop until a SHUTDOWN frame drains the server.
    /// Returns once every connection handler has exited and every stream
    /// engine has flushed its queues and joined its workers.
    pub fn run(self) -> std::io::Result<()> {
        let mut handlers: Vec<JoinHandle<()>> = Vec::new();
        for conn in self.listener.incoming() {
            if self.shared.draining() {
                // Woken by the shutdown handler's self-connect (or a late
                // client); either way the connection is refused by closing.
                break;
            }
            let conn = match conn {
                Ok(conn) => conn,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::ConnectionAborted
                            | std::io::ErrorKind::ConnectionReset
                            | std::io::ErrorKind::Interrupted
                    ) =>
                {
                    continue
                }
                Err(e) => return Err(e),
            };
            let shared = Arc::clone(&self.shared);
            let wake_addr = self.local_addr;
            let spawned = std::thread::Builder::new()
                .name("tristream-serve-conn".to_string())
                .spawn(move || handle_connection(conn, &shared, wake_addr));
            match spawned {
                Ok(handle) => handlers.push(handle),
                // Thread exhaustion: shed this connection, keep serving.
                Err(_) => continue,
            }
            handlers.retain(|h| !h.is_finished());
        }
        for handle in handlers {
            let _ = handle.join();
        }
        // Flushes queued batches and joins every engine worker thread.
        self.shared.table.clear();
        Ok(())
    }
}

/// The loopback address used to wake the accept loop out of `accept()`
/// when a bind to an unspecified address (0.0.0.0 / ::) makes the listener
/// address itself unconnectable.
fn wakeup_addr(local: SocketAddr) -> SocketAddr {
    match local.ip() {
        IpAddr::V4(ip) if ip.is_unspecified() => {
            SocketAddr::new(IpAddr::V4(Ipv4Addr::LOCALHOST), local.port())
        }
        IpAddr::V6(ip) if ip.is_unspecified() => {
            SocketAddr::new(IpAddr::V6(Ipv6Addr::LOCALHOST), local.port())
        }
        _ => local,
    }
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

fn handle_connection(conn: TcpStream, shared: &Shared, wake_addr: SocketAddr) {
    // A connection that dies mid-write (peer gone) is not a server error;
    // everything worth reporting went to the peer as an ERROR frame.
    let _ = drive_connection(&conn, shared, wake_addr);
}

/// Whether to keep reading frames from this connection after a response.
enum Flow {
    Continue,
    Close,
}

fn drive_connection(
    conn: &TcpStream,
    shared: &Shared,
    wake_addr: SocketAddr,
) -> Result<(), GraphError> {
    conn.set_read_timeout(Some(DRAIN_POLL))
        .map_err(GraphError::Io)?;
    let mut hello_done = false;
    loop {
        let frame_type = match frame::read_frame_type(&mut &*conn) {
            Ok(None) => return Ok(()), // clean EOF at a frame boundary
            Ok(Some(t)) => t,
            Err(GraphError::Io(e)) if is_timeout(&e) => {
                if shared.draining() {
                    return Ok(()); // idle connection during drain
                }
                continue;
            }
            Err(e) => return Err(e),
        };
        // Mid-frame reads run blocking, so a poll timeout can never split
        // a frame; the boundary poll above is the only timeout site.
        conn.set_read_timeout(None).map_err(GraphError::Io)?;
        let payload = frame::read_frame_body(&mut &*conn);
        conn.set_read_timeout(Some(DRAIN_POLL))
            .map_err(GraphError::Io)?;
        let payload = match payload {
            Ok(payload) => payload,
            Err(e @ GraphError::Binary { .. }) => {
                // Framing is now desynchronised: answer, then hang up.
                respond(conn, &Response::Error(transport_error(&e)))?;
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        let (response, flow) = match Request::decode(frame_type, &payload) {
            Err(err) => (Response::Error(err), Flow::Continue),
            Ok(request) => handle_request(request, shared, &mut hello_done, wake_addr),
        };
        respond(conn, &response)?;
        if matches!(flow, Flow::Close) {
            return Ok(());
        }
    }
}

fn respond(conn: &TcpStream, response: &Response) -> Result<(), GraphError> {
    // Response encoding is infallible for everything the server constructs
    // (ERROR messages are sanitised by the encoder); a failure here would
    // be a protocol-module bug, answered with a bare OK-less hangup rather
    // than a panic.
    let payload = response.encode_payload().unwrap_or_default();
    let mut writer = conn;
    frame::write_frame(&mut writer, response.frame_type().byte(), &payload)?;
    writer.flush().map_err(GraphError::Io)
}

fn handle_request(
    request: Request,
    shared: &Shared,
    hello_done: &mut bool,
    wake_addr: SocketAddr,
) -> (Response, Flow) {
    // The handshake comes first on every connection.
    if !*hello_done && !matches!(request, Request::Hello { .. }) {
        return (
            Response::Error(WireError::new(
                ErrorCode::MalformedFrame,
                "expected HELLO as the first frame",
            )),
            Flow::Close,
        );
    }
    match request {
        Request::Hello { version } => {
            if version != PROTOCOL_VERSION {
                return (
                    Response::Error(WireError::new(
                        ErrorCode::UnsupportedVersion,
                        format!("server speaks version {PROTOCOL_VERSION}, client sent {version}"),
                    )),
                    Flow::Close,
                );
            }
            *hello_done = true;
            (Response::Ok, Flow::Continue)
        }
        Request::Create {
            name,
            algo,
            seed,
            budget_words,
            shards,
            window,
        } => {
            if shared.draining() {
                return (draining_error(), Flow::Continue);
            }
            let result = shared
                .table
                .create(&name, &algo, seed, budget_words, shards, window);
            (
                match result {
                    Ok(()) => Response::Ok,
                    Err(err) => Response::Error(err),
                },
                Flow::Continue,
            )
        }
        Request::Delete { name } => {
            if shared.draining() {
                return (draining_error(), Flow::Continue);
            }
            (
                match shared.table.delete(&name) {
                    Ok(()) => Response::Ok,
                    Err(err) => Response::Error(err),
                },
                Flow::Continue,
            )
        }
        Request::Edges { name, edges } => {
            if shared.draining() {
                return (draining_error(), Flow::Continue);
            }
            (
                match shared.table.require(&name) {
                    Ok(entry) => {
                        ingest_batch(&entry, &edges);
                        Response::Ok
                    }
                    Err(err) => Response::Error(err),
                },
                Flow::Continue,
            )
        }
        // Reads stay answerable during a drain: in-flight dashboards see
        // the final state while the engines flush.
        Request::Query { name } => (
            match shared.table.require(&name) {
                Ok(entry) => {
                    let (estimate, edges, memory_words) = query_stream(&entry);
                    Response::Estimate {
                        estimate,
                        edges,
                        memory_words,
                    }
                }
                Err(err) => Response::Error(err),
            },
            Flow::Continue,
        ),
        Request::Stats => (Response::StatsReport(shared.table.stats()), Flow::Continue),
        Request::Shutdown => {
            shared.draining.store(true, Ordering::SeqCst);
            // Wake the accept loop out of `accept()`; the connection is
            // dropped immediately on the other side. Failure is harmless —
            // the next real connection attempt wakes the loop the same way.
            let _ = TcpStream::connect_timeout(&wakeup_addr(wake_addr), DRAIN_POLL);
            (Response::Ok, Flow::Close)
        }
    }
}

fn draining_error() -> Response {
    Response::Error(WireError::new(
        ErrorCode::Draining,
        "server is draining; no new streams or edges accepted",
    ))
}
