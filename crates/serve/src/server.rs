//! The `tristream serve` daemon: accept loop, per-connection handlers, and
//! graceful drain.
//!
//! Std-only by design (threads + [`TcpListener`], no async runtime), to
//! match the workspace's vendored-deps constraint:
//!
//! * **One handler thread per connection.** Tenant counts are small and
//!   engine work dominates; a thread per connection keeps the control flow
//!   linear and lets the OS do the scheduling.
//! * **Engine work happens on engine threads.** A handler only *enqueues*
//!   EDGES batches (bounded queues, backpressure) and *synchronises* for
//!   queries; per-stream mutexes (see [`crate::table`]) keep tenants
//!   isolated, so a slow query on one stream never stalls ingest on
//!   another.
//! * **Drain is cooperative.** A SHUTDOWN frame flips the draining flag;
//!   the accept loop stops accepting (woken by a loopback self-connect),
//!   handlers notice within one poll interval (their reads time out at
//!   frame boundaries only, so a timeout can never split a frame), finish
//!   their in-flight request, and exit; finally the stream table is
//!   dropped, which flushes every queued batch and joins every engine
//!   worker. The same path serves SIGTERM-style supervision: point the
//!   supervisor's stop command at `tristream-cli client shutdown` (std has
//!   no portable signal handling; see `docs/OPERATIONS.md`).

use crate::checkpoint::{scan_state_dir, write_checkpoint, StreamCheckpoint};
use crate::protocol::{
    transport_error, ErrorCode, Request, Response, WireError, MIN_PROTOCOL_VERSION,
    PROTOCOL_VERSION,
};
use crate::table::{checkpoint_stream, ingest_batch, query_stream, StreamEntry, StreamTable};
use std::io::Write;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use tristream_graph::{frame, GraphError};

/// How often an idle connection handler re-checks the draining flag. Reads
/// time out at this interval *only* while waiting for a frame-type byte —
/// never mid-frame — so polling can't desynchronise the stream. The idle
/// deadline ([`ServerOptions::idle_timeout`]) is counted in these polls,
/// so connection lifetime decisions stay count-based and clock-free.
const DRAIN_POLL: Duration = Duration::from_millis(50);

/// Configuration for [`Server::bind_with`].
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Directory for per-stream checkpoints. `Some` turns on periodic
    /// checkpoints and startup recovery, and makes CREATE refuse
    /// algorithms the registry does not flag as snapshotable
    /// ([`ErrorCode::SnapshotUnsupported`]) rather than silently running
    /// them unprotected.
    pub state_dir: Option<PathBuf>,
    /// Checkpoint every N EDGES frames per stream (clamped to ≥ 1). The
    /// cadence is frame-count-based, never clock-based, so the set of
    /// checkpoints a stream produces is a pure function of its ingest
    /// history — which is what makes crash-recovery tests exact.
    pub checkpoint_interval: u64,
    /// Close a connection after this long without receiving a frame
    /// (rounded up to the drain-poll granularity). `None` keeps idle
    /// connections forever. Draining never waits on an idle connection
    /// either way — idle handlers notice the flag within one poll.
    pub idle_timeout: Option<Duration>,
    /// Socket write deadline, so a handler blocked on a stalled peer's
    /// full TCP window errors out instead of hanging a drain.
    pub write_timeout: Option<Duration>,
}

impl Default for ServerOptions {
    fn default() -> Self {
        Self {
            state_dir: None,
            checkpoint_interval: 8,
            idle_timeout: None,
            write_timeout: Some(Duration::from_secs(30)),
        }
    }
}

/// State shared between the accept loop and every connection handler.
struct Shared {
    table: StreamTable,
    draining: AtomicBool,
    state_dir: Option<PathBuf>,
    checkpoint_interval: u64,
    /// Idle deadline in whole [`DRAIN_POLL`] ticks; `None` = never.
    idle_polls: Option<u64>,
    write_timeout: Option<Duration>,
}

impl Shared {
    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    recovered: Vec<String>,
    skipped: Vec<PathBuf>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("local_addr", &self.local_addr)
            .field("recovered", &self.recovered)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Binds the daemon to `addr` (e.g. `"127.0.0.1:7878"`; port 0 picks an
    /// ephemeral port — read it back with [`Server::local_addr`]) with
    /// default options: no state directory, no idle deadline.
    pub fn bind<A: ToSocketAddrs>(addr: A) -> std::io::Result<Self> {
        Self::bind_with(addr, ServerOptions::default())
    }

    /// Binds with explicit [`ServerOptions`]. When a state directory is
    /// configured, every valid checkpoint in it is restored before the
    /// first connection is accepted — so by the time [`Server::run`]
    /// answers a QUERY, recovered streams are already at their
    /// checkpointed state, waiting for the client to replay the remainder
    /// of the stream from each checkpoint's recorded edge offset. Corrupt
    /// or unrestorable checkpoints are skipped and logged, never fatal:
    /// one bad file must not keep every healthy stream down.
    pub fn bind_with<A: ToSocketAddrs>(addr: A, options: ServerOptions) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let idle_polls = options
            .idle_timeout
            .map(|t| (t.as_millis() / DRAIN_POLL.as_millis().max(1)).max(1) as u64);
        let shared = Arc::new(Shared {
            table: StreamTable::new(),
            draining: AtomicBool::new(false),
            state_dir: options.state_dir,
            checkpoint_interval: options.checkpoint_interval.max(1),
            idle_polls,
            write_timeout: options.write_timeout,
        });
        let mut recovered = Vec::new();
        let mut skipped = Vec::new();
        if let Some(dir) = shared.state_dir.as_deref() {
            let scan = scan_state_dir(dir)?;
            for (path, err) in scan.skipped {
                log_event(&format!(
                    "skipping corrupt checkpoint {}: {err}",
                    path.display()
                ));
                skipped.push(path);
            }
            for cp in scan.checkpoints {
                match shared.table.create_restored(&cp) {
                    Ok(()) => {
                        log_event(&format!(
                            "recovered stream {:?} at {} edges ({} batches)",
                            cp.name, cp.replay_edges, cp.ingest_batches
                        ));
                        recovered.push(cp.name);
                    }
                    Err(err) => {
                        log_event(&format!(
                            "skipping unrestorable checkpoint for stream {:?}: {err}",
                            cp.name
                        ));
                        skipped.push(crate::checkpoint::checkpoint_path(dir, &cp.name));
                    }
                }
            }
        }
        Ok(Self {
            listener,
            local_addr,
            shared,
            recovered,
            skipped,
        })
    }

    /// The address the daemon is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Streams restored from the state directory at bind time, in
    /// checkpoint-file order.
    pub fn recovered_streams(&self) -> &[String] {
        &self.recovered
    }

    /// Checkpoint files present at bind time that could not be restored
    /// (corrupt container or failed rebuild), each already logged.
    pub fn skipped_checkpoints(&self) -> &[PathBuf] {
        &self.skipped
    }

    /// Runs the accept loop until a SHUTDOWN frame drains the server.
    /// Returns once every connection handler has exited and every stream
    /// engine has flushed its queues and joined its workers.
    pub fn run(self) -> std::io::Result<()> {
        let mut handlers: Vec<JoinHandle<()>> = Vec::new();
        for conn in self.listener.incoming() {
            if self.shared.draining() {
                // Woken by the shutdown handler's self-connect (or a late
                // client); either way the connection is refused by closing.
                break;
            }
            let conn = match conn {
                Ok(conn) => conn,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::ConnectionAborted
                            | std::io::ErrorKind::ConnectionReset
                            | std::io::ErrorKind::Interrupted
                    ) =>
                {
                    continue
                }
                Err(e) => return Err(e),
            };
            let shared = Arc::clone(&self.shared);
            let wake_addr = self.local_addr;
            let spawned = std::thread::Builder::new()
                .name("tristream-serve-conn".to_string())
                .spawn(move || handle_connection(conn, &shared, wake_addr));
            match spawned {
                Ok(handle) => handlers.push(handle),
                // Thread exhaustion: shed this connection, keep serving.
                Err(_) => continue,
            }
            handlers.retain(|h| !h.is_finished());
        }
        for handle in handlers {
            let _ = handle.join();
        }
        // Flushes queued batches and joins every engine worker thread.
        self.shared.table.clear();
        Ok(())
    }
}

/// The loopback address used to wake the accept loop out of `accept()`
/// when a bind to an unspecified address (0.0.0.0 / ::) makes the listener
/// address itself unconnectable.
fn wakeup_addr(local: SocketAddr) -> SocketAddr {
    match local.ip() {
        IpAddr::V4(ip) if ip.is_unspecified() => {
            SocketAddr::new(IpAddr::V4(Ipv4Addr::LOCALHOST), local.port())
        }
        IpAddr::V6(ip) if ip.is_unspecified() => {
            SocketAddr::new(IpAddr::V6(Ipv6Addr::LOCALHOST), local.port())
        }
        _ => local,
    }
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

fn handle_connection(conn: TcpStream, shared: &Shared, wake_addr: SocketAddr) {
    // A connection that dies mid-write (peer gone) is not a server error;
    // everything worth reporting went to the peer as an ERROR frame.
    let _ = drive_connection(&conn, shared, wake_addr);
}

/// Whether to keep reading frames from this connection after a response.
enum Flow {
    Continue,
    Close,
}

fn drive_connection(
    conn: &TcpStream,
    shared: &Shared,
    wake_addr: SocketAddr,
) -> Result<(), GraphError> {
    conn.set_read_timeout(Some(DRAIN_POLL))
        .map_err(GraphError::Io)?;
    conn.set_write_timeout(shared.write_timeout)
        .map_err(GraphError::Io)?;
    let mut hello_done = false;
    // Consecutive boundary-poll timeouts with no frame: the idle deadline,
    // measured in polls so the decision is a count, not a clock read.
    let mut idle_polls = 0u64;
    loop {
        let frame_type = match frame::read_frame_type(&mut &*conn) {
            Ok(None) => return Ok(()), // clean EOF at a frame boundary
            Ok(Some(t)) => t,
            Err(GraphError::Io(e)) if is_timeout(&e) => {
                if shared.draining() {
                    return Ok(()); // idle connection during drain
                }
                idle_polls += 1;
                if shared.idle_polls.is_some_and(|limit| idle_polls >= limit) {
                    log_event(&format!(
                        "closing idle connection{}: no frame within the idle deadline \
                         ({idle_polls} polls)",
                        peer_label(conn)
                    ));
                    return Ok(());
                }
                continue;
            }
            Err(e) => return Err(e),
        };
        idle_polls = 0;
        // Mid-frame reads run blocking, so a poll timeout can never split
        // a frame; the boundary poll above is the only timeout site.
        conn.set_read_timeout(None).map_err(GraphError::Io)?;
        let payload = frame::read_frame_body(&mut &*conn);
        conn.set_read_timeout(Some(DRAIN_POLL))
            .map_err(GraphError::Io)?;
        let payload = match payload {
            Ok(payload) => payload,
            Err(e @ GraphError::Binary { .. }) => {
                // Framing is now desynchronised: answer, then hang up.
                respond(conn, &Response::Error(transport_error(&e)))?;
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        let (response, flow) = match Request::decode(frame_type, &payload) {
            Err(err) => (Response::Error(err), Flow::Continue),
            Ok(request) => handle_request(request, shared, &mut hello_done, wake_addr),
        };
        respond(conn, &response)?;
        if matches!(flow, Flow::Close) {
            return Ok(());
        }
    }
}

fn respond(conn: &TcpStream, response: &Response) -> Result<(), GraphError> {
    // Response encoding is infallible for everything the server constructs
    // (ERROR messages are sanitised by the encoder); a failure here would
    // be a protocol-module bug, answered with a bare OK-less hangup rather
    // than a panic.
    let payload = response.encode_payload().unwrap_or_default();
    let mut writer = conn;
    frame::write_frame(&mut writer, response.frame_type().byte(), &payload)?;
    writer.flush().map_err(GraphError::Io)
}

fn handle_request(
    request: Request,
    shared: &Shared,
    hello_done: &mut bool,
    wake_addr: SocketAddr,
) -> (Response, Flow) {
    // The handshake comes first on every connection.
    if !*hello_done && !matches!(request, Request::Hello { .. }) {
        return (
            Response::Error(WireError::new(
                ErrorCode::MalformedFrame,
                "expected HELLO as the first frame",
            )),
            Flow::Close,
        );
    }
    match request {
        Request::Hello { version } => {
            if !(MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&version) {
                return (
                    Response::Error(WireError::new(
                        ErrorCode::UnsupportedVersion,
                        format!(
                            "server speaks versions \
                             {MIN_PROTOCOL_VERSION}–{PROTOCOL_VERSION}, client sent {version}"
                        ),
                    )),
                    Flow::Close,
                );
            }
            *hello_done = true;
            (Response::Ok, Flow::Continue)
        }
        Request::Create {
            name,
            algo,
            seed,
            budget_words,
            shards,
            window,
        } => {
            if shared.draining() {
                return (draining_error(), Flow::Continue);
            }
            // A checkpointing server only accepts streams it can actually
            // checkpoint: refusing here, with a typed error, beats
            // accepting the stream and silently never persisting it.
            if shared.state_dir.is_some() {
                let snapshotable = tristream_baselines::registry::find_algo(&algo)
                    .is_none_or(|spec| spec.snapshotable);
                if !snapshotable {
                    return (
                        Response::Error(WireError::new(
                            ErrorCode::SnapshotUnsupported,
                            format!(
                                "algorithm {algo:?} does not support snapshots; a server \
                                 running with --state-dir cannot checkpoint it"
                            ),
                        )),
                        Flow::Continue,
                    );
                }
            }
            let result = shared
                .table
                .create(&name, &algo, seed, budget_words, shards, window);
            (
                match result {
                    Ok(()) => Response::Ok,
                    Err(err) => Response::Error(err),
                },
                Flow::Continue,
            )
        }
        Request::Delete { name } => {
            if shared.draining() {
                return (draining_error(), Flow::Continue);
            }
            (
                match shared.table.delete(&name) {
                    Ok(()) => Response::Ok,
                    Err(err) => Response::Error(err),
                },
                Flow::Continue,
            )
        }
        Request::Edges { name, edges } => {
            if shared.draining() {
                return (draining_error(), Flow::Continue);
            }
            (
                match shared.table.require(&name) {
                    Ok(entry) => {
                        let batches = ingest_batch(&entry, &edges);
                        maybe_checkpoint(shared, &entry, batches);
                        Response::Ok
                    }
                    Err(err) => Response::Error(err),
                },
                Flow::Continue,
            )
        }
        // Reads stay answerable during a drain: in-flight dashboards see
        // the final state while the engines flush.
        Request::Query { name } => (
            match shared.table.require(&name) {
                Ok(entry) => {
                    let (estimate, edges, memory_words) = query_stream(&entry);
                    Response::Estimate {
                        estimate,
                        edges,
                        memory_words,
                    }
                }
                Err(err) => Response::Error(err),
            },
            Flow::Continue,
        ),
        Request::Stats => (Response::StatsReport(shared.table.stats()), Flow::Continue),
        // Like QUERY, SNAPSHOT stays answerable during a drain: taking a
        // final checkpoint is exactly what an operator wants on the way
        // down.
        Request::Snapshot { name } => (
            match shared
                .table
                .require(&name)
                .and_then(|entry| checkpoint_stream(&entry))
                .and_then(|cp| {
                    cp.encode()
                        .map_err(|e| WireError::new(ErrorCode::BadSnapshot, e.to_string()))
                }) {
                Ok(bytes) => Response::SnapshotData(bytes),
                Err(err) => Response::Error(err),
            },
            Flow::Continue,
        ),
        Request::Restore { checkpoint } => {
            if shared.draining() {
                return (draining_error(), Flow::Continue);
            }
            let result = StreamCheckpoint::decode(&checkpoint)
                .map_err(|e| WireError::new(ErrorCode::BadSnapshot, e.to_string()))
                .and_then(|cp| {
                    shared.table.create_restored(&cp)?;
                    // A restored stream is immediately durable on a
                    // checkpointing server; failure to persist is logged,
                    // not fatal — the stream itself is live.
                    if let Some(dir) = shared.state_dir.as_deref() {
                        if let Err(e) = write_checkpoint(dir, &cp) {
                            log_event(&format!(
                                "failed to persist restored stream {:?}: {e}",
                                cp.name
                            ));
                        }
                    }
                    Ok(())
                });
            (
                match result {
                    Ok(()) => Response::Ok,
                    Err(err) => Response::Error(err),
                },
                Flow::Continue,
            )
        }
        Request::Shutdown => {
            shared.draining.store(true, Ordering::SeqCst);
            // Wake the accept loop out of `accept()`; the connection is
            // dropped immediately on the other side. Failure is harmless —
            // the next real connection attempt wakes the loop the same way.
            let _ = TcpStream::connect_timeout(&wakeup_addr(wake_addr), DRAIN_POLL);
            (Response::Ok, Flow::Close)
        }
    }
}

fn draining_error() -> Response {
    Response::Error(WireError::new(
        ErrorCode::Draining,
        "server is draining; no new streams or edges accepted",
    ))
}

/// Writes the stream's checkpoint if the server persists state and the
/// stream just crossed a checkpoint-interval boundary. Persistence
/// failures are logged and absorbed: losing one checkpoint widens the
/// replay window, it must not fail the ingest that triggered it.
fn maybe_checkpoint(shared: &Shared, entry: &StreamEntry, batches: u64) {
    let Some(dir) = shared.state_dir.as_deref() else {
        return;
    };
    if !entry.snapshotable() || !batches.is_multiple_of(shared.checkpoint_interval) {
        return;
    }
    let written = checkpoint_stream(entry).and_then(|cp| {
        write_checkpoint(dir, &cp)
            .map_err(|e| WireError::new(ErrorCode::BadSnapshot, e.to_string()))
    });
    if let Err(e) = written {
        log_event(&format!(
            "failed to checkpoint stream {:?}: {e}",
            entry.name()
        ));
    }
}

/// One operational log line on stderr, prefixed so supervisor logs are
/// greppable. The serving layer logs only operational events (recovery,
/// skipped checkpoints, closed connections) — stream state never depends
/// on them.
fn log_event(message: &str) {
    eprintln!("tristream-serve: {message}");
}

/// `" from <peer>"` when the peer address is known, for log lines.
fn peer_label(conn: &TcpStream) -> String {
    conn.peer_addr()
        .map(|addr| format!(" from {addr}"))
        .unwrap_or_default()
}
