//! The stream table: named, isolated, concurrently usable estimation
//! streams.
//!
//! Each entry owns a [`ShardedEstimator`] over boxed registry estimators —
//! the *same* engine type, built by the *same* factory recipe, as the
//! offline `count --algo --parallel` path, which is what makes a served
//! estimate bit-identical to an offline run with the same seed, space and
//! batch boundaries (pinned by the `socket` integration test).
//!
//! Locking is two-level so tenants never interfere:
//!
//! * the table's own mutex guards only the `Vec` of entries (lookup,
//!   create, delete) and is held for microseconds;
//! * each stream has its own mutex around engine + counters, so a slow
//!   query on stream A never blocks ingest on stream B.
//!
//! Entries are `Arc`-shared: a connection resolves a name to an
//! `Arc<StreamEntry>` under the table lock, then works on the stream with
//! the table lock released. `DELETE` removes the entry from the table; the
//! engine's worker threads are joined when the last `Arc` drops (for a
//! stream nobody else is touching, that is inside the `DELETE` handler).

use crate::checkpoint::StreamCheckpoint;
use crate::metrics::LatencyCounter;
use crate::protocol::{ErrorCode, StreamStats, WireError};
use std::sync::{Arc, Mutex, MutexGuard};
use tristream_baselines::registry::{find_algo, AlgoParams, StreamHint};
use tristream_core::{ShardedEstimator, TriangleEstimator};
use tristream_graph::Edge;

/// What the budget heuristic assumes about a served stream when `CREATE`
/// resolves its word budget to a space parameter: the stream's true length
/// is unknowable at create time, so the server sizes for a nominal
/// million-edge stream. Normative — `docs/PROTOCOL.md` documents it, and
/// the offline-parity integration test reproduces the resolution with this
/// same hint.
pub const SERVE_STREAM_HINT: StreamHint = StreamHint {
    edges: 1 << 20,
    vertices: 1 << 17,
};

/// Default shard count for streams created with `shards = 0`.
pub const DEFAULT_STREAM_SHARDS: usize = 2;

/// The boxed engine type every stream runs.
pub type StreamEngine = ShardedEstimator<Box<dyn TriangleEstimator + Send>>;

/// Mutable per-stream state, guarded by the entry's mutex.
pub struct StreamState {
    /// The sharded engine (persistent worker threads, bounded queues).
    pub engine: StreamEngine,
    /// EDGES-frame enqueue latency.
    pub ingest: LatencyCounter,
    /// QUERY latency (includes engine synchronisation).
    pub query: LatencyCounter,
}

/// One named stream: immutable identity plus mutexed state.
pub struct StreamEntry {
    name: String,
    algo: &'static str,
    /// The resolved space parameter (from the CREATE budget), recorded for
    /// observability.
    space: usize,
    /// The raw CREATE parameters, kept verbatim (zeros meaning "default"
    /// and all) so a checkpoint can recreate the stream by replaying the
    /// exact CREATE recipe.
    seed: u64,
    budget_words: u64,
    shards: u16,
    window: u64,
    /// Whether the registry flags this stream's algorithm as supporting
    /// snapshots (see `AlgoSpec::snapshotable`).
    snapshotable: bool,
    state: Mutex<StreamState>,
}

impl std::fmt::Debug for StreamEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamEntry")
            .field("name", &self.name)
            .field("algo", &self.algo)
            .field("space", &self.space)
            .finish_non_exhaustive()
    }
}

impl StreamEntry {
    /// The stream's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The registry algorithm the stream runs.
    pub fn algo(&self) -> &'static str {
        self.algo
    }

    /// The space parameter resolved from the CREATE budget.
    pub fn space(&self) -> usize {
        self.space
    }

    /// Whether this stream's algorithm supports checkpoints.
    pub fn snapshotable(&self) -> bool {
        self.snapshotable
    }

    /// Locks the stream's state. Poisoning (an engine panic on another
    /// connection's thread) is healed by taking the inner value: the
    /// engine's own shard mutexes re-surface the panic on the next engine
    /// call, so nothing is masked — but an unrelated stream's handler never
    /// dies on a poisoned table.
    pub fn lock(&self) -> MutexGuard<'_, StreamState> {
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Per-stream counters for a STATS report. Synchronises the engine
    /// (the estimate is the value a QUERY at this instant would see).
    pub fn stats(&self) -> StreamStats {
        let state = self.lock();
        StreamStats {
            name: self.name.clone(),
            algo: self.algo.to_string(),
            edges: state.engine.edges_seen(),
            estimate: state.engine.estimate(),
            memory_words: state.engine.memory_words() as u64,
            ingest_batches: state.ingest.ops(),
            ingest_nanos: state.ingest.total_nanos(),
            queries: state.query.ops(),
            query_nanos: state.query.total_nanos(),
        }
    }
}

/// Builds the engine for a CREATE request, mirroring the offline
/// `count --algo --parallel` path exactly: the space parameter comes from
/// [`AlgoSpec::space_for_budget`] under [`SERVE_STREAM_HINT`], pool-type
/// spaces split `ceil(space / shards)` across shards, per-instance spaces
/// replicate whole, and shard `i` is seeded `shard_seed(seed, i)` by
/// [`ShardedEstimator::from_factory`].
///
/// Returns the engine and the resolved space parameter.
///
/// [`AlgoSpec::space_for_budget`]: tristream_baselines::registry::AlgoSpec::space_for_budget
pub fn build_stream_engine(
    algo: &str,
    seed: u64,
    budget_words: u64,
    shards: usize,
    window: Option<u64>,
) -> Result<(StreamEngine, usize), WireError> {
    let spec = find_algo(algo).ok_or_else(|| {
        WireError::new(
            ErrorCode::UnknownAlgorithm,
            format!(
                "unknown algorithm {algo:?}; registry: {}",
                tristream_baselines::registry::algo_names_joined()
            ),
        )
    })?;
    let shards = shards.max(1);
    let budget = usize::try_from(budget_words).unwrap_or(usize::MAX);
    let space = spec.space_for_budget(budget, &SERVE_STREAM_HINT);
    let shard_space = if spec.splits_across_shards {
        space.div_ceil(shards)
    } else {
        space
    };
    let engine = ShardedEstimator::from_factory(shards, seed, |shard_seed| {
        spec.build(&AlgoParams {
            space: shard_space,
            seed: shard_seed,
            window,
        })
    });
    Ok((engine, space))
}

/// The server's stream table. Backed by a `Vec`, not a map: the tenant
/// count is small, lookups are one string compare per entry, and STATS
/// reports stay in deterministic creation order.
#[derive(Default)]
pub struct StreamTable {
    streams: Mutex<Vec<Arc<StreamEntry>>>,
}

impl std::fmt::Debug for StreamTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamTable")
            .field("streams", &self.lock().len())
            .finish()
    }
}

impl StreamTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> MutexGuard<'_, Vec<Arc<StreamEntry>>> {
        self.streams
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Creates a named stream. `shards == 0` means
    /// [`DEFAULT_STREAM_SHARDS`]; `window == 0` means the registry default.
    ///
    /// The engine is built *outside* the table lock (worker threads spawn
    /// here), so a CREATE never stalls other tenants' lookups.
    pub fn create(
        &self,
        name: &str,
        algo: &str,
        seed: u64,
        budget_words: u64,
        shards: u16,
        window: u64,
    ) -> Result<(), WireError> {
        if self.get(name).is_some() {
            return Err(WireError::new(
                ErrorCode::DuplicateStream,
                format!("stream {name:?} already exists"),
            ));
        }
        let resolved_shards = if shards == 0 {
            DEFAULT_STREAM_SHARDS
        } else {
            shards as usize
        };
        let window_opt = (window > 0).then_some(window);
        let (engine, space) =
            build_stream_engine(algo, seed, budget_words, resolved_shards, window_opt)?;
        // `find_algo` succeeded inside `build_stream_engine`; re-resolve
        // for the 'static spec rather than threading it back out.
        let spec = find_algo(algo);
        let entry = Arc::new(StreamEntry {
            name: name.to_string(),
            algo: spec.map_or("?", |spec| spec.name),
            space,
            seed,
            budget_words,
            shards,
            window,
            snapshotable: spec.is_some_and(|spec| spec.snapshotable),
            state: Mutex::new(StreamState {
                engine,
                ingest: LatencyCounter::new(),
                query: LatencyCounter::new(),
            }),
        });
        self.insert(entry)
    }

    /// Recreates a stream from a checkpoint: replays the recorded CREATE
    /// recipe (same algorithm, seed, budget, shards, window — so the
    /// engine is built bit-identically), then restores the engine state.
    /// Engine-level validation failures surface as
    /// [`ErrorCode::BadSnapshot`].
    pub fn create_restored(&self, cp: &StreamCheckpoint) -> Result<(), WireError> {
        if self.get(&cp.name).is_some() {
            return Err(WireError::new(
                ErrorCode::DuplicateStream,
                format!("stream {:?} already exists", cp.name),
            ));
        }
        let resolved_shards = if cp.shards == 0 {
            DEFAULT_STREAM_SHARDS
        } else {
            cp.shards as usize
        };
        let window_opt = (cp.window > 0).then_some(cp.window);
        let (mut engine, space) = build_stream_engine(
            &cp.algo,
            cp.seed,
            cp.budget_words,
            resolved_shards,
            window_opt,
        )?;
        engine
            .restore(&cp.engine)
            .map_err(|e| WireError::new(ErrorCode::BadSnapshot, e.to_string()))?;
        let spec = find_algo(&cp.algo);
        let entry = Arc::new(StreamEntry {
            name: cp.name.clone(),
            algo: spec.map_or("?", |spec| spec.name),
            space,
            seed: cp.seed,
            budget_words: cp.budget_words,
            shards: cp.shards,
            window: cp.window,
            snapshotable: spec.is_some_and(|spec| spec.snapshotable),
            state: Mutex::new(StreamState {
                engine,
                // The recovered batch count keeps the checkpoint cadence
                // counting from where the lost process left off.
                ingest: LatencyCounter::with_ops(cp.ingest_batches),
                query: LatencyCounter::new(),
            }),
        });
        self.insert(entry)
    }

    fn insert(&self, entry: Arc<StreamEntry>) -> Result<(), WireError> {
        let mut streams = self.lock();
        // Re-check under the lock: two concurrent CREATEs must not both win.
        if streams.iter().any(|s| s.name() == entry.name()) {
            return Err(WireError::new(
                ErrorCode::DuplicateStream,
                format!("stream {:?} already exists", entry.name()),
            ));
        }
        streams.push(entry);
        Ok(())
    }

    /// Resolves a name to its entry.
    pub fn get(&self, name: &str) -> Option<Arc<StreamEntry>> {
        self.lock().iter().find(|s| s.name() == name).cloned()
    }

    /// Resolves a name or produces the UNKNOWN_STREAM error.
    pub fn require(&self, name: &str) -> Result<Arc<StreamEntry>, WireError> {
        self.get(name).ok_or_else(|| {
            WireError::new(
                ErrorCode::UnknownStream,
                format!("no stream named {name:?}"),
            )
        })
    }

    /// Removes a stream. The engine's queued batches are flushed and its
    /// workers joined when the last `Arc` drops.
    pub fn delete(&self, name: &str) -> Result<(), WireError> {
        let mut streams = self.lock();
        let before = streams.len();
        streams.retain(|s| s.name() != name);
        if streams.len() == before {
            return Err(WireError::new(
                ErrorCode::UnknownStream,
                format!("no stream named {name:?}"),
            ));
        }
        Ok(())
    }

    /// Per-stream counters for every live stream, in creation order.
    pub fn stats(&self) -> Vec<StreamStats> {
        // Snapshot the entries first so per-stream synchronisation (which
        // can wait on engine queues) happens outside the table lock.
        let entries: Vec<Arc<StreamEntry>> = self.lock().clone();
        entries.iter().map(|entry| entry.stats()).collect()
    }

    /// Number of live streams.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the table has no streams.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Drops every stream, flushing queued batches and joining all engine
    /// worker threads — the final step of a graceful drain.
    pub fn clear(&self) {
        self.lock().clear();
    }
}

/// Ingests one batch into an entry, recording enqueue latency. The batch is
/// enqueued on the engine's bounded queues and this returns without waiting
/// for processing (backpressure applies when the queues are full). Returns
/// the stream's total EDGES-frame count — what the server's count-based
/// checkpoint cadence keys on.
pub fn ingest_batch(entry: &StreamEntry, batch: &[Edge]) -> u64 {
    let mut state = entry.lock();
    let (_, nanos) = crate::metrics::timed(|| state.engine.process_batch(batch));
    state.ingest.record(nanos);
    state.ingest.ops()
}

/// Answers a query against an entry, recording query latency (which
/// includes waiting for the engine to drain its queues).
pub fn query_stream(entry: &StreamEntry) -> (f64, u64, u64) {
    let mut state = entry.lock();
    let ((estimate, edges, words), nanos) = crate::metrics::timed(|| {
        (
            state.engine.estimate(),
            state.engine.edges_seen(),
            state.engine.memory_words() as u64,
        )
    });
    state.query.record(nanos);
    (estimate, edges, words)
}

/// Takes a checkpoint of a stream: CREATE parameters, replay offset, and
/// engine snapshot, consistent at one instant (the entry lock is held and
/// the engine snapshot synchronises in-flight batches). Streams whose
/// algorithm is not [`snapshotable`](StreamEntry::snapshotable) are
/// refused with [`ErrorCode::SnapshotUnsupported`] — the typed honesty the
/// registry flag exists for.
pub fn checkpoint_stream(entry: &StreamEntry) -> Result<StreamCheckpoint, WireError> {
    if !entry.snapshotable() {
        return Err(WireError::new(
            ErrorCode::SnapshotUnsupported,
            format!(
                "stream {:?} runs {:?}, which does not support snapshots",
                entry.name(),
                entry.algo()
            ),
        ));
    }
    let state = entry.lock();
    let engine = state
        .engine
        .snapshot()
        .map_err(|e| WireError::new(ErrorCode::SnapshotUnsupported, e.to_string()))?;
    Ok(StreamCheckpoint {
        name: entry.name.clone(),
        algo: entry.algo.to_string(),
        seed: entry.seed,
        budget_words: entry.budget_words,
        shards: entry.shards,
        window: entry.window,
        replay_edges: state.engine.edges_seen(),
        ingest_batches: state.ingest.ops(),
        engine,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tristream_core::parallel::shard_seed;

    fn batch(n: u64) -> Vec<Edge> {
        (0..n).map(|i| Edge::new(i, i + 1)).collect()
    }

    #[test]
    fn create_get_delete_round_trip() {
        let table = StreamTable::new();
        assert!(table.is_empty());
        table
            .create("clicks", "neighborhood-bulk", 7, 1 << 14, 2, 0)
            .unwrap();
        assert_eq!(table.len(), 1);
        let entry = table.require("clicks").unwrap();
        assert_eq!(entry.name(), "clicks");
        assert_eq!(entry.algo(), "neighborhood-bulk");
        assert!(entry.space() >= 1);
        table.delete("clicks").unwrap();
        assert!(table.is_empty());
        assert_eq!(
            table.require("clicks").unwrap_err().code,
            ErrorCode::UnknownStream
        );
    }

    #[test]
    fn duplicate_creates_and_unknown_algos_are_refused() {
        let table = StreamTable::new();
        table.create("s", "exact", 0, 1 << 10, 1, 0).unwrap();
        let err = table.create("s", "exact", 0, 1 << 10, 1, 0).unwrap_err();
        assert_eq!(err.code, ErrorCode::DuplicateStream);
        let err = table
            .create("t", "no-such-algo", 0, 1 << 10, 1, 0)
            .unwrap_err();
        assert_eq!(err.code, ErrorCode::UnknownAlgorithm);
        assert!(err.message.contains("neighborhood"), "{err}");
        let err = table.delete("missing").unwrap_err();
        assert_eq!(err.code, ErrorCode::UnknownStream);
    }

    #[test]
    fn served_engine_matches_the_offline_factory_recipe_bit_for_bit() {
        // The parity contract, in miniature: a table-created stream fed
        // batches must equal a hand-built ShardedEstimator using the
        // documented recipe (space_for_budget under SERVE_STREAM_HINT,
        // div_ceil split, shard_seed seeding).
        let (seed, budget, shards) = (99u64, 1u64 << 14, 3u16);
        let table = StreamTable::new();
        table
            .create("s", "neighborhood-bulk", seed, budget, shards, 0)
            .unwrap();
        let entry = table.require("s").unwrap();
        for chunk in batch(500).chunks(64) {
            ingest_batch(&entry, chunk);
        }
        let (served, edges, _) = query_stream(&entry);

        let spec = find_algo("neighborhood-bulk").unwrap();
        let space = spec.space_for_budget(budget as usize, &SERVE_STREAM_HINT);
        let shard_space = space.div_ceil(shards as usize);
        let mut offline: StreamEngine =
            ShardedEstimator::from_factory(shards as usize, seed, |shard_seed| {
                spec.build(&AlgoParams {
                    space: shard_space,
                    seed: shard_seed,
                    window: None,
                })
            });
        for chunk in batch(500).chunks(64) {
            offline.process_batch(chunk);
        }
        assert_eq!(edges, 500);
        assert_eq!(served.to_bits(), offline.estimate().to_bits());
        // The factory really does use the workspace seeding contract.
        let _ = shard_seed(seed, 1);
    }

    #[test]
    fn streams_are_isolated() {
        let table = StreamTable::new();
        table.create("a", "exact", 0, 1 << 10, 1, 0).unwrap();
        table.create("b", "exact", 0, 1 << 10, 1, 0).unwrap();
        let a = table.require("a").unwrap();
        let b = table.require("b").unwrap();
        // A triangle into `a` only.
        ingest_batch(
            &a,
            &[
                Edge::new(1u64, 2u64),
                Edge::new(2u64, 3u64),
                Edge::new(1u64, 3u64),
            ],
        );
        let (est_a, edges_a, _) = query_stream(&a);
        let (est_b, edges_b, _) = query_stream(&b);
        assert_eq!((est_a, edges_a), (1.0, 3));
        assert_eq!((est_b, edges_b), (0.0, 0));
    }

    #[test]
    fn stats_report_creation_order_and_counters() {
        let table = StreamTable::new();
        table.create("first", "exact", 0, 1 << 10, 1, 0).unwrap();
        table.create("second", "exact", 0, 1 << 10, 1, 0).unwrap();
        let first = table.require("first").unwrap();
        ingest_batch(&first, &batch(10));
        ingest_batch(&first, &batch(10));
        let _ = query_stream(&first);
        let stats = table.stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].name, "first");
        assert_eq!(stats[1].name, "second");
        assert_eq!(stats[0].edges, 20);
        assert_eq!(stats[0].ingest_batches, 2);
        assert_eq!(stats[0].queries, 1);
        assert_eq!(stats[1].ingest_batches, 0);
        assert!(stats[0].memory_words > 0);
    }

    #[test]
    fn zero_shards_and_zero_window_mean_defaults() {
        let table = StreamTable::new();
        table
            .create("w", "sliding", 1, 1 << 12, 0, 0)
            .expect("defaults must be accepted");
        let entry = table.require("w").unwrap();
        ingest_batch(&entry, &batch(8));
        let (_, edges, _) = query_stream(&entry);
        assert_eq!(edges, 8);
    }

    #[test]
    fn checkpoint_restore_round_trips_bit_identically() {
        let table = StreamTable::new();
        table
            .create("clicks", "neighborhood-bulk", 21, 1 << 14, 2, 0)
            .unwrap();
        let entry = table.require("clicks").unwrap();
        for chunk in batch(300).chunks(50) {
            ingest_batch(&entry, chunk);
        }
        let cp = checkpoint_stream(&entry).unwrap();
        assert_eq!(cp.replay_edges, 300);
        assert_eq!(cp.ingest_batches, 6);
        assert_eq!((cp.seed, cp.shards), (21, 2));

        // More edges flow into the original after the checkpoint; the
        // restored stream replays the same suffix and must agree in bits.
        let suffix = batch(140);
        for chunk in suffix.chunks(50) {
            ingest_batch(&entry, chunk);
        }
        let (want, want_edges, _) = query_stream(&entry);

        let other = StreamTable::new();
        other.create_restored(&cp).unwrap();
        let restored = other.require("clicks").unwrap();
        assert!(restored.snapshotable());
        for chunk in suffix.chunks(50) {
            ingest_batch(&restored, chunk);
        }
        let (got, got_edges, _) = query_stream(&restored);
        assert_eq!(got_edges, want_edges);
        assert_eq!(got.to_bits(), want.to_bits());
        // The recovered cadence counter resumes from the checkpoint.
        assert_eq!(other.stats()[0].ingest_batches, 6 + 3);
    }

    #[test]
    fn non_snapshotable_streams_are_refused_with_a_typed_error() {
        let table = StreamTable::new();
        table.create("s", "exact", 0, 1 << 10, 1, 0).unwrap();
        let entry = table.require("s").unwrap();
        assert!(!entry.snapshotable());
        let err = checkpoint_stream(&entry).unwrap_err();
        assert_eq!(err.code, ErrorCode::SnapshotUnsupported);
        assert!(err.message.contains("exact"), "{err}");
    }

    #[test]
    fn restoring_a_corrupt_or_duplicate_checkpoint_fails_typed() {
        let table = StreamTable::new();
        table
            .create("s", "neighborhood-bulk", 3, 1 << 12, 1, 0)
            .unwrap();
        let entry = table.require("s").unwrap();
        ingest_batch(&entry, &batch(64));
        let cp = checkpoint_stream(&entry).unwrap();

        // Same table: the name is taken.
        let err = table.create_restored(&cp).unwrap_err();
        assert_eq!(err.code, ErrorCode::DuplicateStream);

        // Corrupt engine bytes: BAD_SNAPSHOT, and no stream appears.
        let fresh = StreamTable::new();
        let mut bent = cp.clone();
        let mid = bent.engine.len() / 2;
        bent.engine[mid] ^= 0xFF;
        let err = fresh.create_restored(&bent).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadSnapshot);
        assert!(fresh.is_empty());

        // Unknown algorithm in the checkpoint: the CREATE-side error.
        let mut alien = cp.clone();
        alien.algo = "no-such-algo".to_string();
        let err = fresh.create_restored(&alien).unwrap_err();
        assert_eq!(err.code, ErrorCode::UnknownAlgorithm);
    }

    #[test]
    fn clear_joins_everything() {
        let table = StreamTable::new();
        table
            .create("s", "neighborhood-bulk", 1, 1 << 12, 4, 0)
            .unwrap();
        let entry = table.require("s").unwrap();
        ingest_batch(&entry, &batch(100));
        drop(entry);
        table.clear();
        assert!(table.is_empty());
    }
}
