//! The `tristream serve` wire protocol: frame types, error codes, and pure
//! encode/decode of every request and response payload.
//!
//! The normative specification lives in `docs/PROTOCOL.md`; this module is
//! its implementation, and the `protocol_doc` integration test holds the
//! two together (every [`FrameType`] and [`ErrorCode`] variant must appear
//! in the spec by name). The transport — `[type u8][len u32 LE][payload]`
//! frames — is [`tristream_graph::frame`]; edge payloads embed a complete
//! `.tsb` stream and are decoded by [`tristream_graph::binary`], so the
//! magic/version/corruption discipline of the file format carries over to
//! the socket unchanged.
//!
//! Everything here is pure: bytes in, values out, no sockets, no clocks.
//! Malformed input is always an [`Err`] carrying a [`WireError`] the server
//! can answer with — never a panic.

use std::fmt;
use tristream_graph::binary::write_edges_binary;
use tristream_graph::pipeline::read_edges_binary_parallel;
use tristream_graph::{Edge, GraphError};

/// The four magic bytes opening every connection's HELLO payload —
/// "tristream serve protocol", mirroring the `.tsb` file magic.
pub const PROTOCOL_MAGIC: [u8; 4] = *b"TSP\0";

/// The protocol version this module speaks. Versioning follows the `.tsb`
/// discipline: a server refuses versions it does not know with an
/// [`ErrorCode::UnsupportedVersion`] error frame rather than guessing.
///
/// Version 2 added the SNAPSHOT / RESTORE / SNAPSHOT_DATA frames and the
/// SNAPSHOT_UNSUPPORTED / BAD_SNAPSHOT error codes — a purely additive
/// change, so servers keep speaking to version-1 clients (see
/// [`MIN_PROTOCOL_VERSION`] and `docs/PROTOCOL.md` §versioning).
pub const PROTOCOL_VERSION: u16 = 2;

/// The oldest protocol version a server still accepts in HELLO. Version 2
/// is additive over version 1 (new frames, no changed ones), so a v1
/// client that never sends the new frames sees identical behaviour.
pub const MIN_PROTOCOL_VERSION: u16 = 1;

/// Every frame type on the wire. Requests (client → server) use the low
/// range `0x00–0x7F`; responses (server → client) set the high bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameType {
    /// Connection opener: magic + protocol version.
    Hello = 0x00,
    /// Create a named stream running a registry algorithm.
    Create = 0x01,
    /// Tear down a named stream, joining its engine workers.
    Delete = 0x02,
    /// Ingest one batch of edges (an embedded `.tsb` stream) into a stream.
    Edges = 0x03,
    /// Ask for a stream's live estimate.
    Query = 0x04,
    /// Ask for per-stream counters across the whole server.
    Stats = 0x05,
    /// Begin a graceful drain of the whole server.
    Shutdown = 0x06,
    /// Ask for a stream's checkpoint (a `TSS\0` container; v2).
    Snapshot = 0x07,
    /// Recreate a stream from a checkpoint taken with SNAPSHOT (v2).
    Restore = 0x08,
    /// Success, nothing to report.
    Ok = 0x81,
    /// A live estimate (reply to [`FrameType::Query`]).
    Estimate = 0x82,
    /// Per-stream counters (reply to [`FrameType::Stats`]).
    StatsReport = 0x83,
    /// A stream checkpoint (reply to [`FrameType::Snapshot`]; v2).
    SnapshotData = 0x84,
    /// The request failed; carries an [`ErrorCode`] and a message.
    Error = 0x8F,
}

impl FrameType {
    /// Every frame type, in wire-value order — what the doc-drift test
    /// iterates to hold `docs/PROTOCOL.md` to the implementation.
    pub const ALL: [FrameType; 14] = [
        FrameType::Hello,
        FrameType::Create,
        FrameType::Delete,
        FrameType::Edges,
        FrameType::Query,
        FrameType::Stats,
        FrameType::Shutdown,
        FrameType::Snapshot,
        FrameType::Restore,
        FrameType::Ok,
        FrameType::Estimate,
        FrameType::StatsReport,
        FrameType::SnapshotData,
        FrameType::Error,
    ];

    /// The wire byte.
    pub fn byte(self) -> u8 {
        self as u8
    }

    /// Parses a wire byte.
    pub fn from_byte(byte: u8) -> Option<Self> {
        Self::ALL.into_iter().find(|t| t.byte() == byte)
    }

    /// The spec name, exactly as it appears in `docs/PROTOCOL.md`.
    pub fn name(self) -> &'static str {
        match self {
            FrameType::Hello => "HELLO",
            FrameType::Create => "CREATE",
            FrameType::Delete => "DELETE",
            FrameType::Edges => "EDGES",
            FrameType::Query => "QUERY",
            FrameType::Stats => "STATS",
            FrameType::Shutdown => "SHUTDOWN",
            FrameType::Snapshot => "SNAPSHOT",
            FrameType::Restore => "RESTORE",
            FrameType::Ok => "OK",
            FrameType::Estimate => "ESTIMATE",
            FrameType::StatsReport => "STATS_REPORT",
            FrameType::SnapshotData => "SNAPSHOT_DATA",
            FrameType::Error => "ERROR",
        }
    }
}

/// Error codes carried by [`FrameType::Error`] frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The frame's payload did not decode (bad lengths, bad UTF-8, wrong
    /// magic, unknown frame type, …).
    MalformedFrame = 1,
    /// The named stream does not exist.
    UnknownStream = 2,
    /// CREATE named a stream that already exists.
    DuplicateStream = 3,
    /// CREATE named an algorithm the registry does not know.
    UnknownAlgorithm = 4,
    /// An EDGES payload failed `.tsb` validation (bad magic, truncation,
    /// self-loop record, trailing bytes).
    BadEdgePayload = 5,
    /// The server is draining and no longer accepts this request.
    Draining = 6,
    /// HELLO carried a protocol version this server does not speak.
    UnsupportedVersion = 7,
    /// SNAPSHOT named a stream whose algorithm does not support
    /// checkpoints, or CREATE asked a checkpointing server (`--state-dir`)
    /// for such an algorithm (v2).
    SnapshotUnsupported = 8,
    /// A RESTORE payload failed `TSS\0` checkpoint validation (bad magic,
    /// truncation, checksum mismatch, incompatible parameters) (v2).
    BadSnapshot = 9,
}

impl ErrorCode {
    /// Every error code, in wire-value order (doc-drift test input).
    pub const ALL: [ErrorCode; 9] = [
        ErrorCode::MalformedFrame,
        ErrorCode::UnknownStream,
        ErrorCode::DuplicateStream,
        ErrorCode::UnknownAlgorithm,
        ErrorCode::BadEdgePayload,
        ErrorCode::Draining,
        ErrorCode::UnsupportedVersion,
        ErrorCode::SnapshotUnsupported,
        ErrorCode::BadSnapshot,
    ];

    /// The wire byte.
    pub fn byte(self) -> u8 {
        self as u8
    }

    /// Parses a wire byte.
    pub fn from_byte(byte: u8) -> Option<Self> {
        Self::ALL.into_iter().find(|c| c.byte() == byte)
    }

    /// The spec name, exactly as it appears in `docs/PROTOCOL.md`.
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::MalformedFrame => "MALFORMED_FRAME",
            ErrorCode::UnknownStream => "UNKNOWN_STREAM",
            ErrorCode::DuplicateStream => "DUPLICATE_STREAM",
            ErrorCode::UnknownAlgorithm => "UNKNOWN_ALGORITHM",
            ErrorCode::BadEdgePayload => "BAD_EDGE_PAYLOAD",
            ErrorCode::Draining => "DRAINING",
            ErrorCode::UnsupportedVersion => "UNSUPPORTED_VERSION",
            ErrorCode::SnapshotUnsupported => "SNAPSHOT_UNSUPPORTED",
            ErrorCode::BadSnapshot => "BAD_SNAPSHOT",
        }
    }
}

/// A protocol-level failure: what a server puts in an ERROR frame, and what
/// a decode function returns on malformed input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// The error class.
    pub code: ErrorCode,
    /// Human-readable detail, carried verbatim on the wire.
    pub message: String,
}

impl WireError {
    /// Convenience constructor.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        Self {
            code,
            message: message.into(),
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code.name(), self.message)
    }
}

impl std::error::Error for WireError {}

fn malformed(message: impl Into<String>) -> WireError {
    WireError::new(ErrorCode::MalformedFrame, message)
}

/// A client → server request, decoded.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Connection opener; the version is validated by the server, not the
    /// decoder, so an old server can answer a new client with a proper
    /// [`ErrorCode::UnsupportedVersion`] error frame.
    Hello {
        /// Protocol version the client speaks.
        version: u16,
    },
    /// Create a named stream.
    Create {
        /// Stream name (1–65535 UTF-8 bytes, like every wire string).
        name: String,
        /// Registry algorithm name.
        algo: String,
        /// Root RNG seed; shard seeds derive from it exactly as in the
        /// offline `count --parallel` path.
        seed: u64,
        /// Memory budget in 8-byte words (see `memory_words()` in
        /// `tristream-core`); the server resolves the algorithm's space
        /// parameter from it.
        budget_words: u64,
        /// Engine shards (worker threads); 0 means the server default.
        shards: u16,
        /// Sliding-window size for the `sliding` algorithm; 0 means the
        /// registry default, other algorithms ignore it.
        window: u64,
    },
    /// Tear down a named stream.
    Delete {
        /// Stream name.
        name: String,
    },
    /// Ingest one batch of edges. One EDGES frame is one engine batch, so
    /// the client's framing defines the batch boundaries bulk algorithms
    /// are sensitive to.
    Edges {
        /// Stream name.
        name: String,
        /// The decoded batch.
        edges: Vec<Edge>,
    },
    /// Ask for a live estimate.
    Query {
        /// Stream name.
        name: String,
    },
    /// Ask for per-stream counters.
    Stats,
    /// Begin a graceful drain.
    Shutdown,
    /// Ask for a stream's checkpoint (v2): the stream's CREATE parameters,
    /// its replay offset, and its engine state, as one `TSS\0` container
    /// the server can later recreate the stream from.
    Snapshot {
        /// Stream name.
        name: String,
    },
    /// Recreate a stream from a checkpoint (v2). The payload is the raw
    /// container from a SNAPSHOT_DATA reply — self-delimiting, so it
    /// occupies the rest of the frame with no extra framing.
    Restore {
        /// The checkpoint container, verbatim.
        checkpoint: Vec<u8>,
    },
}

/// Per-stream counters in a [`Response::StatsReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct StreamStats {
    /// Stream name.
    pub name: String,
    /// Registry algorithm the stream runs.
    pub algo: String,
    /// Edges ingested so far.
    pub edges: u64,
    /// Current estimate (synchronised at report time).
    pub estimate: f64,
    /// Measured `memory_words()` across the stream's shards.
    pub memory_words: u64,
    /// EDGES frames ingested.
    pub ingest_batches: u64,
    /// Total nanoseconds spent enqueueing EDGES frames.
    pub ingest_nanos: u64,
    /// QUERY frames answered.
    pub queries: u64,
    /// Total nanoseconds spent answering QUERY frames (includes engine
    /// synchronisation).
    pub query_nanos: u64,
}

/// A server → client response, decoded.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Success, nothing to report.
    Ok,
    /// Reply to QUERY.
    Estimate {
        /// The stream's current estimate. Encoded as raw IEEE-754 bits, so
        /// the value a client sees is bit-identical to the server's.
        estimate: f64,
        /// Edges ingested so far.
        edges: u64,
        /// Measured `memory_words()` across the stream's shards.
        memory_words: u64,
    },
    /// Reply to STATS: one record per live stream, in creation order.
    StatsReport(Vec<StreamStats>),
    /// Reply to SNAPSHOT: the stream's checkpoint container, verbatim (v2).
    SnapshotData(Vec<u8>),
    /// The request failed.
    Error(WireError),
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn push_str(out: &mut Vec<u8>, s: &str) -> Result<(), WireError> {
    let len = u16::try_from(s.len())
        .ok()
        .filter(|&l| l > 0)
        .ok_or_else(|| malformed("string field must be 1–65535 bytes"))?;
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(s.as_bytes());
    Ok(())
}

impl Request {
    /// The frame type this request travels as.
    pub fn frame_type(&self) -> FrameType {
        match self {
            Request::Hello { .. } => FrameType::Hello,
            Request::Create { .. } => FrameType::Create,
            Request::Delete { .. } => FrameType::Delete,
            Request::Edges { .. } => FrameType::Edges,
            Request::Query { .. } => FrameType::Query,
            Request::Stats => FrameType::Stats,
            Request::Shutdown => FrameType::Shutdown,
            Request::Snapshot { .. } => FrameType::Snapshot,
            Request::Restore { .. } => FrameType::Restore,
        }
    }

    /// Encodes the payload bytes (without the frame header).
    pub fn encode_payload(&self) -> Result<Vec<u8>, WireError> {
        let mut out = Vec::new();
        match self {
            Request::Hello { version } => {
                out.extend_from_slice(&PROTOCOL_MAGIC);
                out.extend_from_slice(&version.to_le_bytes());
            }
            Request::Create {
                name,
                algo,
                seed,
                budget_words,
                shards,
                window,
            } => {
                out.extend_from_slice(&seed.to_le_bytes());
                out.extend_from_slice(&budget_words.to_le_bytes());
                out.extend_from_slice(&window.to_le_bytes());
                out.extend_from_slice(&shards.to_le_bytes());
                push_str(&mut out, name)?;
                push_str(&mut out, algo)?;
            }
            Request::Delete { name } | Request::Query { name } | Request::Snapshot { name } => {
                push_str(&mut out, name)?;
            }
            Request::Restore { checkpoint } => {
                out.extend_from_slice(checkpoint);
            }
            Request::Edges { name, edges } => {
                push_str(&mut out, name)?;
                // An EDGES payload embeds a complete `.tsb` stream; writing
                // into a Vec cannot fail, but the codec's signature is
                // fallible, so propagate rather than unwrap.
                write_edges_binary(edges, &mut out)
                    .map_err(|e| WireError::new(ErrorCode::BadEdgePayload, e.to_string()))?;
            }
            Request::Stats | Request::Shutdown => {}
        }
        Ok(out)
    }

    /// Decode workers for `EDGES` payloads: the machine's parallelism,
    /// capped low — frame decoding shares the box with every session's
    /// estimation shards, and the parallel decoder only engages above its
    /// own size threshold anyway (see `docs/OPERATIONS.md` on thread
    /// budgeting).
    fn edge_decode_workers() -> usize {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .min(4)
    }

    /// Decodes a request from its frame type byte and payload.
    pub fn decode(frame_type: u8, payload: &[u8]) -> Result<Request, WireError> {
        let frame_type = FrameType::from_byte(frame_type)
            .ok_or_else(|| malformed(format!("unknown frame type byte 0x{frame_type:02x}")))?;
        let mut cur = Cursor::new(payload);
        let request = match frame_type {
            FrameType::Hello => {
                let magic = cur.bytes(4)?;
                if magic != PROTOCOL_MAGIC {
                    return Err(malformed("bad HELLO magic (expected \"TSP\\0\")"));
                }
                Request::Hello {
                    version: cur.u16()?,
                }
            }
            FrameType::Create => {
                let seed = cur.u64()?;
                let budget_words = cur.u64()?;
                let window = cur.u64()?;
                let shards = cur.u16()?;
                let name = cur.string()?;
                let algo = cur.string()?;
                Request::Create {
                    name,
                    algo,
                    seed,
                    budget_words,
                    shards,
                    window,
                }
            }
            FrameType::Delete => Request::Delete {
                name: cur.string()?,
            },
            FrameType::Edges => {
                let name = cur.string()?;
                // The payload is already resident, so large frames decode
                // on scoped worker threads (small ones fall through to the
                // sequential reader inside `read_edges_binary_parallel`).
                let edges = read_edges_binary_parallel(cur.rest(), Self::edge_decode_workers())
                    .map_err(|e| WireError::new(ErrorCode::BadEdgePayload, e.to_string()))?;
                return Ok(Request::Edges {
                    name,
                    edges: edges.into_edges(),
                });
            }
            FrameType::Query => Request::Query {
                name: cur.string()?,
            },
            FrameType::Stats => Request::Stats,
            FrameType::Shutdown => Request::Shutdown,
            FrameType::Snapshot => Request::Snapshot {
                name: cur.string()?,
            },
            // The checkpoint container validates itself (magic, checksums,
            // trailing bytes) when the server applies it; the wire layer
            // only carries the bytes.
            FrameType::Restore => Request::Restore {
                checkpoint: cur.rest().to_vec(),
            },
            FrameType::Ok
            | FrameType::Estimate
            | FrameType::StatsReport
            | FrameType::SnapshotData
            | FrameType::Error => {
                return Err(malformed(format!(
                    "response frame {} sent as a request",
                    frame_type.name()
                )))
            }
        };
        cur.finish()?;
        Ok(request)
    }
}

impl Response {
    /// The frame type this response travels as.
    pub fn frame_type(&self) -> FrameType {
        match self {
            Response::Ok => FrameType::Ok,
            Response::Estimate { .. } => FrameType::Estimate,
            Response::StatsReport(_) => FrameType::StatsReport,
            Response::SnapshotData(_) => FrameType::SnapshotData,
            Response::Error(_) => FrameType::Error,
        }
    }

    /// Encodes the payload bytes (without the frame header).
    pub fn encode_payload(&self) -> Result<Vec<u8>, WireError> {
        let mut out = Vec::new();
        match self {
            Response::Ok => {}
            Response::Estimate {
                estimate,
                edges,
                memory_words,
            } => {
                out.extend_from_slice(&estimate.to_bits().to_le_bytes());
                out.extend_from_slice(&edges.to_le_bytes());
                out.extend_from_slice(&memory_words.to_le_bytes());
            }
            Response::StatsReport(streams) => {
                let count = u32::try_from(streams.len())
                    .map_err(|_| malformed("too many streams for a STATS_REPORT"))?;
                out.extend_from_slice(&count.to_le_bytes());
                for s in streams {
                    push_str(&mut out, &s.name)?;
                    push_str(&mut out, &s.algo)?;
                    out.extend_from_slice(&s.edges.to_le_bytes());
                    out.extend_from_slice(&s.estimate.to_bits().to_le_bytes());
                    out.extend_from_slice(&s.memory_words.to_le_bytes());
                    out.extend_from_slice(&s.ingest_batches.to_le_bytes());
                    out.extend_from_slice(&s.ingest_nanos.to_le_bytes());
                    out.extend_from_slice(&s.queries.to_le_bytes());
                    out.extend_from_slice(&s.query_nanos.to_le_bytes());
                }
            }
            Response::SnapshotData(checkpoint) => {
                out.extend_from_slice(checkpoint);
            }
            Response::Error(err) => {
                out.push(err.code.byte());
                // Sanitise so ERROR frames always encode: an empty message
                // gets a placeholder, an oversized one is truncated on a
                // char boundary to fit the u16 length prefix.
                let message = if err.message.is_empty() {
                    "(no detail)"
                } else {
                    let mut end = err.message.len().min(u16::MAX as usize);
                    while !err.message.is_char_boundary(end) {
                        end -= 1;
                    }
                    &err.message[..end]
                };
                push_str(&mut out, message)?;
            }
        }
        Ok(out)
    }

    /// Decodes a response from its frame type byte and payload.
    pub fn decode(frame_type: u8, payload: &[u8]) -> Result<Response, WireError> {
        let frame_type = FrameType::from_byte(frame_type)
            .ok_or_else(|| malformed(format!("unknown frame type byte 0x{frame_type:02x}")))?;
        let mut cur = Cursor::new(payload);
        let response = match frame_type {
            FrameType::Ok => Response::Ok,
            FrameType::Estimate => Response::Estimate {
                estimate: f64::from_bits(cur.u64()?),
                edges: cur.u64()?,
                memory_words: cur.u64()?,
            },
            FrameType::StatsReport => {
                let count = cur.u32()?;
                let mut streams = Vec::with_capacity(count.min(1 << 16) as usize);
                for _ in 0..count {
                    streams.push(StreamStats {
                        name: cur.string()?,
                        algo: cur.string()?,
                        edges: cur.u64()?,
                        estimate: f64::from_bits(cur.u64()?),
                        memory_words: cur.u64()?,
                        ingest_batches: cur.u64()?,
                        ingest_nanos: cur.u64()?,
                        queries: cur.u64()?,
                        query_nanos: cur.u64()?,
                    });
                }
                Response::StatsReport(streams)
            }
            FrameType::SnapshotData => Response::SnapshotData(cur.rest().to_vec()),
            FrameType::Error => {
                let code = cur.u8()?;
                let code = ErrorCode::from_byte(code)
                    .ok_or_else(|| malformed(format!("unknown error code {code}")))?;
                Response::Error(WireError {
                    code,
                    message: cur.string()?,
                })
            }
            other => {
                return Err(malformed(format!(
                    "request frame {} sent as a response",
                    other.name()
                )))
            }
        };
        cur.finish()?;
        Ok(response)
    }
}

// ---------------------------------------------------------------------------
// Decoding cursor
// ---------------------------------------------------------------------------

/// A bounds-checked little-endian reader over a payload slice. Every
/// shortfall is a [`WireError`], never a panic or a silent truncation.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or_else(|| malformed("payload shorter than its fields"))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.bytes(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.bytes(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.bytes(8)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(b);
        Ok(u64::from_le_bytes(raw))
    }

    /// A length-prefixed UTF-8 string (u16 length, 1–65535 bytes).
    fn string(&mut self) -> Result<String, WireError> {
        let len = self.u16()?;
        if len == 0 {
            return Err(malformed("empty string field"));
        }
        let raw = self.bytes(len as usize)?;
        std::str::from_utf8(raw)
            .map(str::to_string)
            .map_err(|_| malformed("string field is not UTF-8"))
    }

    /// Everything not yet consumed (used for embedded `.tsb` payloads).
    fn rest(&mut self) -> &'a [u8] {
        let slice = &self.buf[self.pos..];
        self.pos = self.buf.len();
        slice
    }

    /// Trailing bytes after the final field are corruption, exactly as in
    /// the `.tsb` codec.
    fn finish(&self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(malformed("trailing bytes after the final field"))
        }
    }
}

/// Maps a transport-level [`GraphError`] (bad framing, truncated frame) to
/// the ERROR frame a server should answer with before closing the
/// connection.
pub fn transport_error(err: &GraphError) -> WireError {
    malformed(err.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        let payload = req.encode_payload().unwrap();
        let decoded = Request::decode(req.frame_type().byte(), &payload).unwrap();
        assert_eq!(decoded, req);
    }

    fn round_trip_response(resp: Response) {
        let payload = resp.encode_payload().unwrap();
        let decoded = Response::decode(resp.frame_type().byte(), &payload).unwrap();
        assert_eq!(decoded, resp);
    }

    #[test]
    fn every_request_round_trips() {
        round_trip_request(Request::Hello {
            version: PROTOCOL_VERSION,
        });
        round_trip_request(Request::Create {
            name: "clicks".into(),
            algo: "neighborhood-bulk".into(),
            seed: 42,
            budget_words: 1 << 16,
            shards: 4,
            window: 0,
        });
        round_trip_request(Request::Delete {
            name: "clicks".into(),
        });
        round_trip_request(Request::Edges {
            name: "clicks".into(),
            edges: vec![Edge::new(1u64, 2u64), Edge::new(2u64, 3u64)],
        });
        round_trip_request(Request::Query {
            name: "clicks".into(),
        });
        round_trip_request(Request::Stats);
        round_trip_request(Request::Shutdown);
        round_trip_request(Request::Snapshot {
            name: "clicks".into(),
        });
        round_trip_request(Request::Restore {
            checkpoint: vec![0x54, 0x53, 0x53, 0x00, 1, 0, 0, 0],
        });
        round_trip_request(Request::Restore {
            checkpoint: Vec::new(),
        });
    }

    #[test]
    fn every_response_round_trips() {
        round_trip_response(Response::Ok);
        round_trip_response(Response::Estimate {
            estimate: 1234.5678,
            edges: 3_000,
            memory_words: 8_192,
        });
        round_trip_response(Response::StatsReport(vec![StreamStats {
            name: "clicks".into(),
            algo: "sliding".into(),
            edges: 10,
            estimate: 2.5,
            memory_words: 64,
            ingest_batches: 3,
            ingest_nanos: 1_000,
            queries: 2,
            query_nanos: 5_000,
        }]));
        round_trip_response(Response::StatsReport(Vec::new()));
        round_trip_response(Response::SnapshotData(vec![0xAA; 64]));
        round_trip_response(Response::SnapshotData(Vec::new()));
        round_trip_response(Response::Error(WireError::new(
            ErrorCode::UnknownStream,
            "no stream named \"nope\"",
        )));
        round_trip_response(Response::Error(WireError::new(
            ErrorCode::BadSnapshot,
            "corrupt snapshot at byte 12: bad section checksum",
        )));
    }

    #[test]
    fn version_two_is_additive_over_version_one() {
        // The v1 wire bytes are untouched: every v1 frame type keeps its
        // byte, and the new v2 bytes were previously unassigned.
        assert_eq!(PROTOCOL_VERSION, 2);
        assert_eq!(MIN_PROTOCOL_VERSION, 1);
        assert_eq!(FrameType::Shutdown.byte(), 0x06);
        assert_eq!(FrameType::Snapshot.byte(), 0x07);
        assert_eq!(FrameType::Restore.byte(), 0x08);
        assert_eq!(FrameType::SnapshotData.byte(), 0x84);
        assert_eq!(FrameType::Error.byte(), 0x8F);
        assert_eq!(ErrorCode::SnapshotUnsupported.byte(), 8);
        assert_eq!(ErrorCode::BadSnapshot.byte(), 9);
    }

    #[test]
    fn estimate_bits_survive_the_wire_exactly() {
        // NaN-boxing-hostile values and signed zero must round-trip
        // bit-for-bit: the parity guarantee is stated in bits, not in ==.
        for value in [0.1 + 0.2, -0.0, f64::MIN_POSITIVE, 1e300] {
            let resp = Response::Estimate {
                estimate: value,
                edges: 0,
                memory_words: 0,
            };
            let payload = resp.encode_payload().unwrap();
            match Response::decode(FrameType::Estimate.byte(), &payload).unwrap() {
                Response::Estimate { estimate, .. } => {
                    assert_eq!(estimate.to_bits(), value.to_bits());
                }
                other => panic!("expected Estimate, got {other:?}"),
            }
        }
    }

    #[test]
    fn frame_type_bytes_round_trip_and_unknowns_are_rejected() {
        for t in FrameType::ALL {
            assert_eq!(FrameType::from_byte(t.byte()), Some(t));
        }
        assert_eq!(FrameType::from_byte(0x7F), None);
        let err = Request::decode(0x7F, &[]).unwrap_err();
        assert_eq!(err.code, ErrorCode::MalformedFrame);
        assert!(err.message.contains("0x7f"), "{err}");
    }

    #[test]
    fn error_code_bytes_round_trip() {
        for c in ErrorCode::ALL {
            assert_eq!(ErrorCode::from_byte(c.byte()), Some(c));
        }
        assert_eq!(ErrorCode::from_byte(0), None);
        assert_eq!(ErrorCode::from_byte(200), None);
    }

    #[test]
    fn hello_magic_and_truncations_are_malformed() {
        let mut payload = Request::Hello {
            version: PROTOCOL_VERSION,
        }
        .encode_payload()
        .unwrap();
        payload[0] = b'X';
        let err = Request::decode(FrameType::Hello.byte(), &payload).unwrap_err();
        assert_eq!(err.code, ErrorCode::MalformedFrame);
        assert!(err.message.contains("magic"), "{err}");
        // Truncated payload.
        let err = Request::decode(FrameType::Hello.byte(), &payload[..3]).unwrap_err();
        assert_eq!(err.code, ErrorCode::MalformedFrame);
    }

    #[test]
    fn trailing_bytes_are_malformed() {
        let mut payload = Request::Query {
            name: "clicks".into(),
        }
        .encode_payload()
        .unwrap();
        payload.push(0);
        let err = Request::decode(FrameType::Query.byte(), &payload).unwrap_err();
        assert!(err.message.contains("trailing"), "{err}");
    }

    #[test]
    fn empty_and_non_utf8_names_are_malformed() {
        // Empty name.
        let err = Request::decode(FrameType::Query.byte(), &[0, 0]).unwrap_err();
        assert!(err.message.contains("empty"), "{err}");
        // Invalid UTF-8.
        let payload = [2u8, 0, 0xFF, 0xFE];
        let err = Request::decode(FrameType::Query.byte(), &payload).unwrap_err();
        assert!(err.message.contains("UTF-8"), "{err}");
    }

    #[test]
    fn corrupt_embedded_tsb_is_a_bad_edge_payload() {
        let good = Request::Edges {
            name: "s".into(),
            edges: vec![Edge::new(1u64, 2u64)],
        }
        .encode_payload()
        .unwrap();
        // Truncate inside the record data.
        let err = Request::decode(FrameType::Edges.byte(), &good[..good.len() - 3]).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadEdgePayload);
        // Corrupt the embedded magic (right after the 2-byte name prefix +
        // 1-byte name).
        let mut bad = good.clone();
        bad[3] = b'X';
        let err = Request::decode(FrameType::Edges.byte(), &bad).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadEdgePayload);
        assert!(err.message.contains("magic"), "{err}");
    }

    #[test]
    fn responses_and_requests_cannot_swap_directions() {
        let err = Request::decode(FrameType::Ok.byte(), &[]).unwrap_err();
        assert!(err.message.contains("response frame"), "{err}");
        let err = Response::decode(FrameType::Query.byte(), &[]).unwrap_err();
        assert!(err.message.contains("request frame"), "{err}");
    }

    #[test]
    fn spec_names_are_unique() {
        let mut names: Vec<&str> = FrameType::ALL.iter().map(|t| t.name()).collect();
        names.extend(ErrorCode::ALL.iter().map(|c| c.name()));
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total, "duplicate spec names");
    }
}
