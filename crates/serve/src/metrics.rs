//! Latency counters for the serving layer — the only module in
//! `crates/serve` allowed to read the clock (`tristream-analyze` rule D1
//! scopes `Instant::now` to this file, `crates/bench` and the CLI front
//! end).
//!
//! Keeping the clock behind [`timed`] preserves the workspace's determinism
//! story: stream *state* (engines, estimates, seeds) never depends on time;
//! only the observability counters reported by `STATS` do.

use std::time::Instant;

/// A monotonically growing (operations, total nanoseconds) pair — the
/// per-stream ingest and query counters reported by `STATS`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyCounter {
    ops: u64,
    total_nanos: u64,
}

impl LatencyCounter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// A counter resuming from a recovered operation count (latency totals
    /// restart at zero — wall-clock history does not survive a restart,
    /// but the op count drives the checkpoint cadence, which must).
    pub fn with_ops(ops: u64) -> Self {
        Self {
            ops,
            total_nanos: 0,
        }
    }

    /// Records one operation that took `nanos` nanoseconds. Saturates
    /// instead of wrapping: after ~584 years of accumulated latency the
    /// counter pins at the maximum rather than lying small.
    pub fn record(&mut self, nanos: u64) {
        self.ops = self.ops.saturating_add(1);
        self.total_nanos = self.total_nanos.saturating_add(nanos);
    }

    /// Operations recorded.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Total nanoseconds across all recorded operations.
    pub fn total_nanos(&self) -> u64 {
        self.total_nanos
    }

    /// Mean nanoseconds per operation (0 before the first operation).
    pub fn mean_nanos(&self) -> u64 {
        self.total_nanos.checked_div(self.ops).unwrap_or(0)
    }
}

/// Runs `f` and returns its result together with the elapsed wall-clock
/// nanoseconds (saturated into a `u64`).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let start = Instant::now();
    let out = f();
    let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    (out, nanos)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_average() {
        let mut c = LatencyCounter::new();
        assert_eq!((c.ops(), c.total_nanos(), c.mean_nanos()), (0, 0, 0));
        c.record(100);
        c.record(300);
        assert_eq!(c.ops(), 2);
        assert_eq!(c.total_nanos(), 400);
        assert_eq!(c.mean_nanos(), 200);
    }

    #[test]
    fn counters_saturate_instead_of_wrapping() {
        let mut c = LatencyCounter::new();
        c.record(u64::MAX);
        c.record(u64::MAX);
        assert_eq!(c.total_nanos(), u64::MAX);
        assert_eq!(c.ops(), 2);
    }

    #[test]
    fn timed_returns_the_closure_result() {
        let (value, nanos) = timed(|| 6 * 7);
        assert_eq!(value, 42);
        // Can't assert much about a wall clock beyond it not exploding.
        let _ = nanos;
    }
}
