//! The serving layer of the `tristream` workspace: a multi-tenant streaming
//! triangle-estimation daemon.
//!
//! The paper's one-pass estimators are exactly the state worth keeping
//! resident in a long-lived process — tiny, constant-space, queryable at
//! any prefix of the stream — and this crate turns them into a daemon:
//! `tristream-cli serve` binds a TCP listener, clients create named
//! streams running any registry algorithm under a word budget, feed them
//! length-prefixed `.tsb` edge frames, and query live estimates
//! concurrently, without stalling ingestion.
//!
//! * [`protocol`] — frame types, error codes, pure encode/decode. The
//!   normative spec is `docs/PROTOCOL.md`; a doc-drift test keeps the two
//!   aligned.
//! * [`table`] — the stream table: per-stream [`ShardedEstimator`] engines
//!   built by the *same* recipe as the offline `count --algo --parallel`
//!   path, so served estimates are bit-identical to offline runs with the
//!   same seed, budget and batch boundaries.
//! * [`checkpoint`] — stream checkpoints (`TSS\0` containers nesting the
//!   engine's estimator snapshot) and the `--state-dir` file layout behind
//!   crash recovery: atomic writes, corrupt files skipped and reported.
//! * [`server`] — accept loop, per-connection handler threads, graceful
//!   drain, periodic checkpoints and startup recovery (see
//!   `docs/OPERATIONS.md`).
//! * [`client`] — a typed blocking client, used by the CLI, the bench
//!   suite, and the integration tests.
//! * [`metrics`] — ingest/query latency counters (the only clock reads in
//!   the crate).
//!
//! Everything is std-only: threads and [`std::net::TcpListener`], no async
//! runtime. Like every library crate in the workspace, the crate is
//! panic-free on malformed input — a corrupt frame is an ERROR reply,
//! never a crash — and deterministic: stream state depends only on seeds
//! and batch boundaries, never on time or thread interleaving.
//!
//! [`ShardedEstimator`]: tristream_core::ShardedEstimator

pub mod checkpoint;
pub mod client;
pub mod metrics;
pub mod protocol;
pub mod server;
pub mod table;

pub use checkpoint::{StateDirScan, StreamCheckpoint};
pub use client::{Client, ClientError, CreateStream, EstimateReply, RetryPolicy};
pub use protocol::{
    ErrorCode, FrameType, Request, Response, StreamStats, WireError, MIN_PROTOCOL_VERSION,
    PROTOCOL_MAGIC, PROTOCOL_VERSION,
};
pub use server::{Server, ServerOptions};
pub use table::{StreamTable, DEFAULT_STREAM_SHARDS, SERVE_STREAM_HINT};
