//! Stream checkpoints: everything needed to recreate a served stream —
//! its CREATE parameters, its replay offset, and its engine state — in one
//! `TSS\0` container, plus the state-directory layout `serve --state-dir`
//! persists them under.
//!
//! A checkpoint nests the engine's own [`TriangleEstimator::snapshot`]
//! container (kind `KIND_SHARDED`) inside a serve-level container of kind
//! [`KIND_STREAM`], so the corruption discipline is uniform: magic,
//! version, per-section checksums, no trailing bytes, and every failure a
//! typed [`SnapshotError`] — never a panic. Restoring replays the CREATE
//! recipe *exactly* (same algorithm, seed, budget, shard count, window)
//! and then restores the engine, which is what makes a recovered stream's
//! estimate bit-identical to the uninterrupted run once the remaining
//! edges are replayed from [`StreamCheckpoint::replay_edges`].
//!
//! On disk, a stream named `s` lives at `<state-dir>/<hex(s)>.tsc` — the
//! name is hex-encoded so arbitrary UTF-8 stream names can never escape
//! the directory or collide with each other. Writes are atomic
//! (tempfile + rename), so a crash mid-checkpoint leaves the previous
//! checkpoint intact; recovery skips (and reports) any file that fails
//! validation rather than refusing to start.
//!
//! [`TriangleEstimator::snapshot`]: tristream_core::TriangleEstimator::snapshot

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use tristream_graph::snapshot::{
    put_string, put_u64s, SnapshotError, SnapshotReader, SnapshotWriter,
};

/// Container kind tag for a serve stream checkpoint, disjoint from the
/// estimator kinds (`KIND_BULK` = 1, `KIND_SHARDED` = 2) so
/// `tristream_core::snapshot::peek_kind` tells the layers apart.
pub const KIND_STREAM: u8 = 3;

/// Section holding the stream's identity and CREATE parameters.
pub const SEC_STREAM_META: u16 = 1;

/// Section holding the nested engine snapshot, verbatim.
pub const SEC_ENGINE: u16 = 2;

/// File extension for checkpoints in a state directory ("tristream serve
/// checkpoint").
pub const CHECKPOINT_EXT: &str = "tsc";

/// One stream's complete persistent state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamCheckpoint {
    /// Stream name, exactly as CREATE received it.
    pub name: String,
    /// Registry algorithm name.
    pub algo: String,
    /// Root RNG seed from CREATE.
    pub seed: u64,
    /// Memory budget in words from CREATE.
    pub budget_words: u64,
    /// Shard count from CREATE (0 = server default, preserved raw so the
    /// rebuild resolves defaults identically).
    pub shards: u16,
    /// Window from CREATE (0 = registry default, preserved raw).
    pub window: u64,
    /// Edges ingested when the checkpoint was taken — the stream offset a
    /// `.tsb` replay resumes from after recovery.
    pub replay_edges: u64,
    /// EDGES frames ingested when the checkpoint was taken (drives the
    /// count-based checkpoint cadence across restarts).
    pub ingest_batches: u64,
    /// The engine's own snapshot container, verbatim.
    pub engine: Vec<u8>,
}

impl StreamCheckpoint {
    /// Serializes the checkpoint to its `TSS\0` container.
    pub fn encode(&self) -> Result<Vec<u8>, SnapshotError> {
        let mut meta = Vec::with_capacity(64);
        meta.push(KIND_STREAM);
        put_string(&mut meta, &self.name)?;
        put_string(&mut meta, &self.algo)?;
        put_u64s(
            &mut meta,
            &[
                self.seed,
                self.budget_words,
                self.window,
                self.replay_edges,
                self.ingest_batches,
            ],
        );
        meta.extend_from_slice(&self.shards.to_le_bytes());
        let mut writer = SnapshotWriter::new();
        writer.section(SEC_STREAM_META, &meta)?;
        writer.section(SEC_ENGINE, &self.engine)?;
        Ok(writer.finish())
    }

    /// Parses a checkpoint container, validating structure and checksums.
    /// The nested engine bytes are *not* decoded here — the engine
    /// validates them itself when the stream is rebuilt.
    pub fn decode(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let reader = SnapshotReader::parse(bytes)?;
        let mut meta = reader.section(SEC_STREAM_META)?;
        let kind = meta.u8("checkpoint kind tag")?;
        if kind != KIND_STREAM {
            return Err(SnapshotError::Incompatible {
                reason: format!(
                    "expected a stream checkpoint (kind {KIND_STREAM}), found kind {kind}"
                ),
            });
        }
        let name = meta.string("stream name")?;
        let algo = meta.string("algorithm name")?;
        let seed = meta.u64("seed")?;
        let budget_words = meta.u64("budget words")?;
        let window = meta.u64("window")?;
        let replay_edges = meta.u64("replay edge offset")?;
        let ingest_batches = meta.u64("ingest batch count")?;
        let shards = meta.u16("shard count")?;
        meta.finish()?;
        let mut engine_section = reader.section(SEC_ENGINE)?;
        let engine = engine_section.rest().to_vec();
        Ok(Self {
            name,
            algo,
            seed,
            budget_words,
            shards,
            window,
            replay_edges,
            ingest_batches,
            engine,
        })
    }
}

/// The state-directory file name for a stream: hex of the name's UTF-8
/// bytes plus [`CHECKPOINT_EXT`], so any stream name maps to exactly one
/// flat, path-safe file.
pub fn checkpoint_file_name(stream: &str) -> String {
    let mut out = String::with_capacity(stream.len() * 2 + 4);
    for byte in stream.as_bytes() {
        out.push(char::from_digit(u32::from(byte >> 4), 16).unwrap_or('0'));
        out.push(char::from_digit(u32::from(byte & 0xF), 16).unwrap_or('0'));
    }
    out.push('.');
    out.push_str(CHECKPOINT_EXT);
    out
}

/// Inverts [`checkpoint_file_name`]; `None` for files that are not
/// well-formed checkpoint names (odd hex, wrong extension, invalid UTF-8).
pub fn stream_name_from_file(file_name: &str) -> Option<String> {
    let hex = file_name.strip_suffix(".tsc")?;
    if hex.len() % 2 != 0 {
        return None;
    }
    let mut bytes = Vec::with_capacity(hex.len() / 2);
    let digits = hex.as_bytes();
    for pair in digits.chunks_exact(2) {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        bytes.push((hi * 16 + lo) as u8);
    }
    String::from_utf8(bytes).ok()
}

/// The checkpoint path for a stream under a state directory.
pub fn checkpoint_path(state_dir: &Path, stream: &str) -> PathBuf {
    state_dir.join(checkpoint_file_name(stream))
}

/// Writes a checkpoint atomically: encode, write to a `.tmp` sibling,
/// rename over the final path. A crash at any point leaves either the old
/// checkpoint or the new one — never a torn file — because rename within a
/// directory is atomic on every platform the workspace targets.
pub fn write_checkpoint(state_dir: &Path, cp: &StreamCheckpoint) -> Result<PathBuf, SnapshotError> {
    let bytes = cp.encode()?;
    let path = checkpoint_path(state_dir, &cp.name);
    let tmp = path.with_extension("tmp");
    fs::create_dir_all(state_dir)?;
    fs::write(&tmp, &bytes)?;
    fs::rename(&tmp, &path)?;
    Ok(path)
}

/// Reads and validates one checkpoint file.
pub fn read_checkpoint(path: &Path) -> Result<StreamCheckpoint, SnapshotError> {
    let bytes = fs::read(path)?;
    StreamCheckpoint::decode(&bytes)
}

/// What a state-directory scan found: the checkpoints that validated, in
/// deterministic (file-name) order, and the files that did not, with the
/// error each one failed on.
#[derive(Debug, Default)]
pub struct StateDirScan {
    /// Valid checkpoints, ordered by file name.
    pub checkpoints: Vec<StreamCheckpoint>,
    /// Files that look like checkpoints but failed validation, with why.
    pub skipped: Vec<(PathBuf, SnapshotError)>,
}

/// Scans a state directory for checkpoints. Only `*.tsc` files are
/// considered; `.tmp` leftovers from interrupted writes are ignored (the
/// rename never happened, so they were never the stream's checkpoint).
/// A missing directory is an empty scan, not an error — a fresh server
/// with a fresh state dir has nothing to recover.
pub fn scan_state_dir(state_dir: &Path) -> io::Result<StateDirScan> {
    let mut scan = StateDirScan::default();
    let entries = match fs::read_dir(state_dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(scan),
        Err(e) => return Err(e),
    };
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let path = entry?.path();
        if path.extension().is_some_and(|ext| ext == CHECKPOINT_EXT) {
            paths.push(path);
        }
    }
    paths.sort();
    for path in paths {
        match read_checkpoint(&path) {
            Ok(cp) => scan.checkpoints.push(cp),
            Err(e) => scan.skipped.push((path, e)),
        }
    }
    Ok(scan)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StreamCheckpoint {
        StreamCheckpoint {
            name: "clicks".to_string(),
            algo: "neighborhood-bulk".to_string(),
            seed: 42,
            budget_words: 1 << 14,
            shards: 3,
            window: 0,
            replay_edges: 4_096,
            ingest_batches: 64,
            engine: vec![0xAB; 128],
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("tristream-checkpoint-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn checkpoints_round_trip() {
        let cp = sample();
        let bytes = cp.encode().unwrap();
        assert_eq!(StreamCheckpoint::decode(&bytes).unwrap(), cp);
    }

    #[test]
    fn every_corruption_is_a_typed_error() {
        let bytes = sample().encode().unwrap();
        // Truncation at every prefix length.
        for len in 0..bytes.len() {
            assert!(
                StreamCheckpoint::decode(&bytes[..len]).is_err(),
                "prefix of {len} bytes decoded"
            );
        }
        // Any single bit flip: either a checksum failure or (for length
        // fields) a structural failure — never Ok with different content,
        // never a panic.
        for byte in 0..bytes.len() {
            let mut bent = bytes.clone();
            bent[byte] ^= 1;
            match StreamCheckpoint::decode(&bent) {
                Err(_) => {}
                Ok(decoded) => panic!("bit flip at byte {byte} decoded as {decoded:?}"),
            }
        }
        // Trailing bytes.
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(matches!(
            StreamCheckpoint::decode(&trailing),
            Err(SnapshotError::Corrupt { .. })
        ));
    }

    #[test]
    fn estimator_snapshots_are_not_stream_checkpoints() {
        use tristream_core::{BulkTriangleCounter, TriangleEstimator};
        let counter = BulkTriangleCounter::new(8, 1);
        let engine_bytes = counter.snapshot().unwrap();
        let err = StreamCheckpoint::decode(&engine_bytes).unwrap_err();
        match err {
            SnapshotError::Incompatible { reason } => {
                assert!(reason.contains("kind"), "{reason}");
            }
            // A bulk snapshot's META is not even shaped like a stream
            // META, so a Corrupt error is equally acceptable.
            SnapshotError::Corrupt { .. } => {}
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn file_names_are_hex_and_invert() {
        assert_eq!(checkpoint_file_name("s"), "73.tsc");
        for name in ["clicks", "s", "emoji-✓", "with/slash", "..", "a b"] {
            let file = checkpoint_file_name(name);
            assert!(
                file.strip_suffix(".tsc")
                    .unwrap()
                    .chars()
                    .all(|c| c.is_ascii_hexdigit()),
                "{file}"
            );
            assert_eq!(stream_name_from_file(&file).as_deref(), Some(name));
        }
        assert_eq!(stream_name_from_file("xyz.tsc"), None);
        assert_eq!(stream_name_from_file("7.tsc"), None);
        assert_eq!(stream_name_from_file("73.tsb"), None);
    }

    #[test]
    fn write_scan_round_trip_skips_corrupt_files() {
        let dir = temp_dir("scan");
        let good = sample();
        write_checkpoint(&dir, &good).unwrap();
        let mut other = sample();
        other.name = "other".to_string();
        let other_path = write_checkpoint(&dir, &other).unwrap();
        // Corrupt the second file in place.
        let mut bytes = fs::read(&other_path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&other_path, &bytes).unwrap();
        // A stray tmp file from a torn write must be ignored entirely.
        fs::write(dir.join("deadbeef.tmp"), b"partial").unwrap();

        let scan = scan_state_dir(&dir).unwrap();
        assert_eq!(scan.checkpoints, vec![good]);
        assert_eq!(scan.skipped.len(), 1);
        assert_eq!(scan.skipped[0].0, other_path);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rewriting_a_checkpoint_replaces_it_atomically() {
        let dir = temp_dir("rewrite");
        let mut cp = sample();
        write_checkpoint(&dir, &cp).unwrap();
        cp.replay_edges = 9_999;
        let path = write_checkpoint(&dir, &cp).unwrap();
        assert_eq!(read_checkpoint(&path).unwrap().replay_edges, 9_999);
        // Exactly one .tsc file: the rename replaced, not duplicated.
        let scan = scan_state_dir(&dir).unwrap();
        assert_eq!(scan.checkpoints.len(), 1);
        assert!(scan.skipped.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_missing_state_dir_is_an_empty_scan() {
        let dir = temp_dir("missing");
        let scan = scan_state_dir(&dir).unwrap();
        assert!(scan.checkpoints.is_empty() && scan.skipped.is_empty());
    }
}
