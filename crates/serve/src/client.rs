//! A typed, blocking client for the serve protocol — the library behind
//! `tristream-cli client` and the integration tests.
//!
//! One [`Client`] wraps one TCP connection and speaks strict
//! request/response: every method writes one frame, flushes, and reads
//! exactly one reply frame. [`Client::connect`] performs the HELLO
//! handshake, so a constructed client is always version-checked.

use crate::protocol::{Request, Response, StreamStats, WireError, PROTOCOL_VERSION};
use std::fmt;
use std::io::Write;
use std::net::{TcpStream, ToSocketAddrs};
use tristream_graph::{frame, Edge, GraphError};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed: connect, framing, or socket I/O.
    Transport(GraphError),
    /// The server answered with an ERROR frame.
    Server(WireError),
    /// The server answered with something the protocol does not allow
    /// here (e.g. an ESTIMATE in reply to CREATE, or a hangup mid-reply).
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Transport(e) => write!(f, "transport error: {e}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol violation: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<GraphError> for ClientError {
    fn from(e: GraphError) -> Self {
        ClientError::Transport(e)
    }
}

impl ClientError {
    /// The server-side error, when that is what this is.
    pub fn server_error(&self) -> Option<&WireError> {
        match self {
            ClientError::Server(e) => Some(e),
            _ => None,
        }
    }
}

/// Parameters for [`Client::create_stream`]. Zero values mean "server
/// default" where the protocol says so (`shards`, `window`).
#[derive(Debug, Clone)]
pub struct CreateStream {
    /// Stream name (1–255 UTF-8 bytes).
    pub name: String,
    /// Registry algorithm name.
    pub algo: String,
    /// Root RNG seed.
    pub seed: u64,
    /// Memory budget in 8-byte words.
    pub budget_words: u64,
    /// Engine shards; 0 = server default.
    pub shards: u16,
    /// Sliding-window size; 0 = registry default.
    pub window: u64,
}

impl CreateStream {
    /// A stream spec with seed 0, a 16 Ki-word budget, and server-default
    /// shards/window.
    pub fn new(name: impl Into<String>, algo: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            algo: algo.into(),
            seed: 0,
            budget_words: 1 << 14,
            shards: 0,
            window: 0,
        }
    }
}

/// Reply to a QUERY.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimateReply {
    /// The stream's current estimate, bit-identical to the server's value.
    pub estimate: f64,
    /// Edges ingested so far.
    pub edges: u64,
    /// Measured `memory_words()` across the stream's shards.
    pub memory_words: u64,
}

/// One connection to a `tristream serve` daemon.
#[derive(Debug)]
pub struct Client {
    conn: TcpStream,
}

impl Client {
    /// Connects and performs the HELLO handshake.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, ClientError> {
        let conn =
            TcpStream::connect(addr).map_err(|e| ClientError::Transport(GraphError::Io(e)))?;
        let mut client = Self { conn };
        client.expect_ok(&Request::Hello {
            version: PROTOCOL_VERSION,
        })?;
        Ok(client)
    }

    fn roundtrip(&mut self, request: &Request) -> Result<Response, ClientError> {
        let payload = request
            .encode_payload()
            .map_err(|e| ClientError::Protocol(format!("unencodable request: {e}")))?;
        let mut writer = &self.conn;
        frame::write_frame(&mut writer, request.frame_type().byte(), &payload)?;
        writer.flush().map_err(GraphError::Io)?;
        match frame::read_frame(&mut &self.conn)? {
            None => Err(ClientError::Protocol(
                "server closed the connection instead of replying".to_string(),
            )),
            Some((frame_type, payload)) => Response::decode(frame_type, &payload)
                .map_err(|e| ClientError::Protocol(e.to_string())),
        }
    }

    fn expect_ok(&mut self, request: &Request) -> Result<(), ClientError> {
        match self.roundtrip(request)? {
            Response::Ok => Ok(()),
            Response::Error(err) => Err(ClientError::Server(err)),
            other => Err(ClientError::Protocol(format!(
                "expected OK, got {}",
                other.frame_type().name()
            ))),
        }
    }

    /// CREATE: a new named stream.
    pub fn create_stream(&mut self, spec: &CreateStream) -> Result<(), ClientError> {
        self.expect_ok(&Request::Create {
            name: spec.name.clone(),
            algo: spec.algo.clone(),
            seed: spec.seed,
            budget_words: spec.budget_words,
            shards: spec.shards,
            window: spec.window,
        })
    }

    /// EDGES: ingest one batch. One call is one engine batch — batch
    /// boundaries matter to bulk algorithms, so callers control them.
    pub fn send_edges(&mut self, name: &str, edges: &[Edge]) -> Result<(), ClientError> {
        self.expect_ok(&Request::Edges {
            name: name.to_string(),
            edges: edges.to_vec(),
        })
    }

    /// Sends a stream of edges as consecutive EDGES frames of `batch`
    /// edges each (the final frame may be short) and returns the number of
    /// frames sent. Matching an offline run's `--batch` here is what makes
    /// the served estimate bit-identical to it.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn send_edges_batched(
        &mut self,
        name: &str,
        edges: &[Edge],
        batch: usize,
    ) -> Result<u64, ClientError> {
        assert!(batch > 0, "batch size must be positive");
        let mut frames = 0u64;
        for chunk in edges.chunks(batch) {
            self.send_edges(name, chunk)?;
            frames += 1;
        }
        Ok(frames)
    }

    /// QUERY: the stream's live estimate.
    pub fn query(&mut self, name: &str) -> Result<EstimateReply, ClientError> {
        match self.roundtrip(&Request::Query {
            name: name.to_string(),
        })? {
            Response::Estimate {
                estimate,
                edges,
                memory_words,
            } => Ok(EstimateReply {
                estimate,
                edges,
                memory_words,
            }),
            Response::Error(err) => Err(ClientError::Server(err)),
            other => Err(ClientError::Protocol(format!(
                "expected ESTIMATE, got {}",
                other.frame_type().name()
            ))),
        }
    }

    /// STATS: per-stream counters for every live stream.
    pub fn stats(&mut self) -> Result<Vec<StreamStats>, ClientError> {
        match self.roundtrip(&Request::Stats)? {
            Response::StatsReport(streams) => Ok(streams),
            Response::Error(err) => Err(ClientError::Server(err)),
            other => Err(ClientError::Protocol(format!(
                "expected STATS_REPORT, got {}",
                other.frame_type().name()
            ))),
        }
    }

    /// DELETE: tear down a named stream.
    pub fn delete(&mut self, name: &str) -> Result<(), ClientError> {
        self.expect_ok(&Request::Delete {
            name: name.to_string(),
        })
    }

    /// SHUTDOWN: begin a graceful drain of the whole server.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.expect_ok(&Request::Shutdown)
    }

    /// Escape hatch for tests: sends a raw frame and reads one raw reply.
    pub fn raw_roundtrip(
        &mut self,
        frame_type: u8,
        payload: &[u8],
    ) -> Result<Option<(u8, Vec<u8>)>, ClientError> {
        let mut writer = &self.conn;
        frame::write_frame(&mut writer, frame_type, payload)?;
        writer.flush().map_err(GraphError::Io)?;
        Ok(frame::read_frame(&mut &self.conn)?)
    }
}
