//! A typed, blocking client for the serve protocol — the library behind
//! `tristream-cli client` and the integration tests.
//!
//! One [`Client`] wraps one TCP connection and speaks strict
//! request/response: every method writes one frame, flushes, and reads
//! exactly one reply frame. [`Client::connect`] performs the HELLO
//! handshake, so a constructed client is always version-checked.

use crate::protocol::{Request, Response, StreamStats, WireError, PROTOCOL_VERSION};
use std::fmt;
use std::io::Write;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;
use tristream_graph::{frame, Edge, GraphError};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed: connect, framing, or socket I/O.
    Transport(GraphError),
    /// The server answered with an ERROR frame.
    Server(WireError),
    /// The server answered with something the protocol does not allow
    /// here (e.g. an ESTIMATE in reply to CREATE, or a hangup mid-reply).
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Transport(e) => write!(f, "transport error: {e}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol violation: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<GraphError> for ClientError {
    fn from(e: GraphError) -> Self {
        ClientError::Transport(e)
    }
}

impl ClientError {
    /// The server-side error, when that is what this is.
    pub fn server_error(&self) -> Option<&WireError> {
        match self {
            ClientError::Server(e) => Some(e),
            _ => None,
        }
    }
}

/// A bounded, jitter-free retry schedule for transport failures.
///
/// The delay before retry `i` (1-based) is `10ms << (i - 1)`, capped at
/// 640 ms — so `retries = 5` waits 10, 20, 40, 80, 160 ms. The schedule
/// is deliberately deterministic (no jitter, no clock reads): the same
/// failure sequence produces the same timing every run, which keeps
/// retried CLI runs reproducible and testable.
///
/// Only [`ClientError::Transport`] failures are retried. A server
/// *refusal* — an ERROR frame, surfaced as [`ClientError::Server`] — is a
/// definitive answer, not a transient fault, and is never retried;
/// protocol violations aren't either.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RetryPolicy {
    /// Additional attempts after the first failure (0 = fail fast).
    pub retries: u32,
}

impl RetryPolicy {
    /// No retries: the first transport failure is final.
    pub fn none() -> Self {
        Self { retries: 0 }
    }

    /// Up to `retries` additional attempts with the documented backoff.
    pub fn new(retries: u32) -> Self {
        Self { retries }
    }

    /// The deterministic delay before retry `attempt` (1-based).
    pub fn delay(self, attempt: u32) -> Duration {
        const BASE_MS: u64 = 10;
        const CAP_MS: u64 = 640;
        let exp = attempt.saturating_sub(1).min(16);
        Duration::from_millis((BASE_MS << exp).min(CAP_MS))
    }
}

/// Parameters for [`Client::create_stream`]. Zero values mean "server
/// default" where the protocol says so (`shards`, `window`).
#[derive(Debug, Clone)]
pub struct CreateStream {
    /// Stream name (1–255 UTF-8 bytes).
    pub name: String,
    /// Registry algorithm name.
    pub algo: String,
    /// Root RNG seed.
    pub seed: u64,
    /// Memory budget in 8-byte words.
    pub budget_words: u64,
    /// Engine shards; 0 = server default.
    pub shards: u16,
    /// Sliding-window size; 0 = registry default.
    pub window: u64,
}

impl CreateStream {
    /// A stream spec with seed 0, a 16 Ki-word budget, and server-default
    /// shards/window.
    pub fn new(name: impl Into<String>, algo: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            algo: algo.into(),
            seed: 0,
            budget_words: 1 << 14,
            shards: 0,
            window: 0,
        }
    }
}

/// Reply to a QUERY.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimateReply {
    /// The stream's current estimate, bit-identical to the server's value.
    pub estimate: f64,
    /// Edges ingested so far.
    pub edges: u64,
    /// Measured `memory_words()` across the stream's shards.
    pub memory_words: u64,
}

/// One connection to a `tristream serve` daemon.
#[derive(Debug)]
pub struct Client {
    conn: TcpStream,
    /// The connected peer, kept for [`Client::reconnect`].
    peer: Option<SocketAddr>,
}

impl Client {
    /// Connects and performs the HELLO handshake.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, ClientError> {
        let conn =
            TcpStream::connect(addr).map_err(|e| ClientError::Transport(GraphError::Io(e)))?;
        let peer = conn.peer_addr().ok();
        let mut client = Self { conn, peer };
        client.expect_ok(&Request::Hello {
            version: PROTOCOL_VERSION,
        })?;
        Ok(client)
    }

    /// Connects with retries on transport failure, following `policy`'s
    /// deterministic backoff. Server refusals (a HELLO answered with an
    /// ERROR frame) are final on the first occurrence — retrying a refusal
    /// would just be refused again.
    pub fn connect_with_retry<A: ToSocketAddrs>(
        addr: A,
        policy: RetryPolicy,
    ) -> Result<Self, ClientError> {
        let mut attempt = 0u32;
        loop {
            match Self::connect(&addr) {
                Ok(client) => return Ok(client),
                Err(err @ ClientError::Transport(_)) if attempt < policy.retries => {
                    attempt += 1;
                    std::thread::sleep(policy.delay(attempt));
                    let _ = err;
                }
                Err(err) => return Err(err),
            }
        }
    }

    /// Drops the current connection and dials the same peer again,
    /// including the HELLO handshake.
    pub fn reconnect(&mut self) -> Result<(), ClientError> {
        let peer = self.peer.ok_or_else(|| {
            ClientError::Protocol("peer address unknown; cannot reconnect".to_string())
        })?;
        *self = Self::connect(peer)?;
        Ok(())
    }

    /// Retries `request` across transport failures (reconnecting between
    /// attempts) until it gets a response frame or the policy is
    /// exhausted. Only safe for requests that are read-only or idempotent
    /// on the server — QUERY, STATS, SNAPSHOT — which is why the write
    /// paths don't offer it: a lost EDGES reply leaves "did the batch
    /// land?" unknowable, and blind resends would double-ingest.
    fn roundtrip_with_retry(
        &mut self,
        request: &Request,
        policy: RetryPolicy,
    ) -> Result<Response, ClientError> {
        let mut attempt = 0u32;
        loop {
            let err = match self.roundtrip(request) {
                Ok(response) => return Ok(response),
                Err(err @ ClientError::Transport(_)) => err,
                // Refusals and protocol violations are answers, not faults.
                Err(err) => return Err(err),
            };
            if attempt >= policy.retries {
                return Err(err);
            }
            attempt += 1;
            std::thread::sleep(policy.delay(attempt));
            // A failed reconnect consumes this attempt's slot; the next
            // loop iteration fails fast on the dead connection if none
            // remain.
            let _ = self.reconnect();
        }
    }

    fn roundtrip(&mut self, request: &Request) -> Result<Response, ClientError> {
        let payload = request
            .encode_payload()
            .map_err(|e| ClientError::Protocol(format!("unencodable request: {e}")))?;
        let mut writer = &self.conn;
        frame::write_frame(&mut writer, request.frame_type().byte(), &payload)?;
        writer.flush().map_err(GraphError::Io)?;
        match frame::read_frame(&mut &self.conn)? {
            None => Err(ClientError::Protocol(
                "server closed the connection instead of replying".to_string(),
            )),
            Some((frame_type, payload)) => Response::decode(frame_type, &payload)
                .map_err(|e| ClientError::Protocol(e.to_string())),
        }
    }

    fn expect_ok(&mut self, request: &Request) -> Result<(), ClientError> {
        match self.roundtrip(request)? {
            Response::Ok => Ok(()),
            Response::Error(err) => Err(ClientError::Server(err)),
            other => Err(ClientError::Protocol(format!(
                "expected OK, got {}",
                other.frame_type().name()
            ))),
        }
    }

    /// CREATE: a new named stream.
    pub fn create_stream(&mut self, spec: &CreateStream) -> Result<(), ClientError> {
        self.expect_ok(&Request::Create {
            name: spec.name.clone(),
            algo: spec.algo.clone(),
            seed: spec.seed,
            budget_words: spec.budget_words,
            shards: spec.shards,
            window: spec.window,
        })
    }

    /// EDGES: ingest one batch. One call is one engine batch — batch
    /// boundaries matter to bulk algorithms, so callers control them.
    pub fn send_edges(&mut self, name: &str, edges: &[Edge]) -> Result<(), ClientError> {
        self.expect_ok(&Request::Edges {
            name: name.to_string(),
            edges: edges.to_vec(),
        })
    }

    /// Sends a stream of edges as consecutive EDGES frames of `batch`
    /// edges each (the final frame may be short) and returns the number of
    /// frames sent. Matching an offline run's `--batch` here is what makes
    /// the served estimate bit-identical to it.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn send_edges_batched(
        &mut self,
        name: &str,
        edges: &[Edge],
        batch: usize,
    ) -> Result<u64, ClientError> {
        assert!(batch > 0, "batch size must be positive");
        let mut frames = 0u64;
        for chunk in edges.chunks(batch) {
            self.send_edges(name, chunk)?;
            frames += 1;
        }
        Ok(frames)
    }

    /// QUERY: the stream's live estimate.
    pub fn query(&mut self, name: &str) -> Result<EstimateReply, ClientError> {
        let response = self.roundtrip(&Request::Query {
            name: name.to_string(),
        })?;
        expect_estimate(response)
    }

    /// QUERY with transport retries (see [`RetryPolicy`]): the client
    /// reconnects between attempts, so a server restart mid-session is
    /// survivable for read paths.
    pub fn query_with_retry(
        &mut self,
        name: &str,
        policy: RetryPolicy,
    ) -> Result<EstimateReply, ClientError> {
        let response = self.roundtrip_with_retry(
            &Request::Query {
                name: name.to_string(),
            },
            policy,
        )?;
        expect_estimate(response)
    }

    /// STATS: per-stream counters for every live stream.
    pub fn stats(&mut self) -> Result<Vec<StreamStats>, ClientError> {
        let response = self.roundtrip(&Request::Stats)?;
        expect_stats(response)
    }

    /// STATS with transport retries (see [`RetryPolicy`]).
    pub fn stats_with_retry(
        &mut self,
        policy: RetryPolicy,
    ) -> Result<Vec<StreamStats>, ClientError> {
        let response = self.roundtrip_with_retry(&Request::Stats, policy)?;
        expect_stats(response)
    }

    /// SNAPSHOT: the stream's checkpoint container (v2), ready to be
    /// written to disk or fed to [`Client::restore`].
    pub fn snapshot(&mut self, name: &str) -> Result<Vec<u8>, ClientError> {
        let response = self.roundtrip(&Request::Snapshot {
            name: name.to_string(),
        })?;
        expect_snapshot_data(response)
    }

    /// SNAPSHOT with transport retries (read-only, so safe to retry).
    pub fn snapshot_with_retry(
        &mut self,
        name: &str,
        policy: RetryPolicy,
    ) -> Result<Vec<u8>, ClientError> {
        let response = self.roundtrip_with_retry(
            &Request::Snapshot {
                name: name.to_string(),
            },
            policy,
        )?;
        expect_snapshot_data(response)
    }

    /// RESTORE: recreate a stream from a checkpoint container (v2). Not
    /// retried: like CREATE it mutates the server, and a lost reply makes
    /// a blind resend ambiguous (the retry would see DUPLICATE_STREAM).
    pub fn restore(&mut self, checkpoint: &[u8]) -> Result<(), ClientError> {
        self.expect_ok(&Request::Restore {
            checkpoint: checkpoint.to_vec(),
        })
    }

    /// DELETE: tear down a named stream.
    pub fn delete(&mut self, name: &str) -> Result<(), ClientError> {
        self.expect_ok(&Request::Delete {
            name: name.to_string(),
        })
    }

    /// SHUTDOWN: begin a graceful drain of the whole server.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.expect_ok(&Request::Shutdown)
    }

    /// Escape hatch for tests: sends a raw frame and reads one raw reply.
    pub fn raw_roundtrip(
        &mut self,
        frame_type: u8,
        payload: &[u8],
    ) -> Result<Option<(u8, Vec<u8>)>, ClientError> {
        let mut writer = &self.conn;
        frame::write_frame(&mut writer, frame_type, payload)?;
        writer.flush().map_err(GraphError::Io)?;
        Ok(frame::read_frame(&mut &self.conn)?)
    }
}

fn expect_estimate(response: Response) -> Result<EstimateReply, ClientError> {
    match response {
        Response::Estimate {
            estimate,
            edges,
            memory_words,
        } => Ok(EstimateReply {
            estimate,
            edges,
            memory_words,
        }),
        Response::Error(err) => Err(ClientError::Server(err)),
        other => Err(ClientError::Protocol(format!(
            "expected ESTIMATE, got {}",
            other.frame_type().name()
        ))),
    }
}

fn expect_stats(response: Response) -> Result<Vec<StreamStats>, ClientError> {
    match response {
        Response::StatsReport(streams) => Ok(streams),
        Response::Error(err) => Err(ClientError::Server(err)),
        other => Err(ClientError::Protocol(format!(
            "expected STATS_REPORT, got {}",
            other.frame_type().name()
        ))),
    }
}

fn expect_snapshot_data(response: Response) -> Result<Vec<u8>, ClientError> {
    match response {
        Response::SnapshotData(bytes) => Ok(bytes),
        Response::Error(err) => Err(ClientError::Server(err)),
        other => Err(ClientError::Protocol(format!(
            "expected SNAPSHOT_DATA, got {}",
            other.frame_type().name()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_backoff_schedule_is_deterministic_and_capped() {
        let policy = RetryPolicy::new(8);
        let delays: Vec<u64> = (1..=8)
            .map(|i| policy.delay(i).as_millis() as u64)
            .collect();
        assert_eq!(delays, vec![10, 20, 40, 80, 160, 320, 640, 640]);
        // Huge attempt numbers must not overflow the shift.
        assert_eq!(RetryPolicy::new(u32::MAX).delay(u32::MAX).as_millis(), 640);
        assert_eq!(RetryPolicy::none().retries, 0);
    }
}
